package report

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"firstaid/internal/ledger"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

func sampleBundleInput(t *testing.T) BundleInput {
	t.Helper()
	d := guardDiagnosis(t)
	d.Repro = "firstaid-run -chaos-seed 0x2a -chaos-class overflow -chaos-mode sync"
	d.Mode = "sync"
	return BundleInput{
		D: d,
		Trace: []trace.Record{
			{Seq: 10, Cycles: 100, WallNS: 555, Kind: trace.KMalloc, Arg1: 0x1000, Arg2: 64},
			{Seq: 11, Cycles: 140, WallNS: 777, Kind: trace.KFree, Arg1: 0x1000},
		},
		Spans: []telemetry.SpanSnapshot{
			{ID: 1, Kind: "recovery", Event: 439, Outcome: "recovered", Wall: 12345, Done: true,
				Phases: []telemetry.Phase{{Name: "diagnosis", Wall: 999, N: 3}}},
		},
		Metrics: &telemetry.Snapshot{
			Counters: map[string]uint64{"proc.mallocs": 7},
			Histograms: map[string]telemetry.HistogramSnapshot{
				"recovery_wall_us": {Count: 1},
				"ckpt.pages":       {Count: 2},
			},
		},
	}
}

func TestBundleLayout(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBundle(&buf, sampleBundleInput(t)); err != nil {
		t.Fatal(err)
	}
	files, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"REPRO.txt", "diagnosis.json", "diagnosis.canonical.json",
		"failure.core", "diag.log", "mm_trace_orig.log", "mm_trace_patched.log",
		"illegal_access.log", "report.txt", "trace.txt", "trace.json",
		"spans.json", "metrics.json",
	} {
		if _, ok := files[want]; !ok {
			t.Errorf("bundle missing %s (have %d members)", want, len(files))
		}
	}
	if !strings.Contains(string(files["REPRO.txt"]), "firstaid-run -chaos-seed 0x2a") {
		t.Errorf("REPRO.txt: %s", files["REPRO.txt"])
	}
	if !strings.Contains(string(files["report.txt"]), "GUARD EVIDENCE") {
		t.Errorf("report.txt missing guard section")
	}
	var d ledger.Diagnosis
	if err := json.Unmarshal(files["diagnosis.json"], &d); err != nil {
		t.Fatalf("diagnosis.json: %v", err)
	}
	if d.ID != 1 || len(d.Conditions) == 0 {
		t.Fatalf("diagnosis.json round-trip: %+v", d)
	}
}

func TestBundleStripWallIsDeterministic(t *testing.T) {
	in := sampleBundleInput(t)
	in.StripWall = true
	var a, b bytes.Buffer
	if err := WriteBundle(&a, in); err != nil {
		t.Fatal(err)
	}
	// Perturb every wall field; the stripped bundle must not change.
	in2 := sampleBundleInput(t)
	in2.StripWall = true
	in2.D.BeginWallNS, in2.D.EndWallNS = 1, 2
	in2.D.RecoverySec, in2.D.ValidationSec = 3, 4
	for i := range in2.D.Conditions {
		in2.D.Conditions[i].WallNS = int64(1000 + i)
	}
	for i := range in2.Trace {
		in2.Trace[i].WallNS = int64(31337 + i)
	}
	in2.Spans[0].Wall = 1
	in2.Spans[0].Phases[0].Wall = 2
	if err := WriteBundle(&b, in2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("stripped bundles differ: %d vs %d bytes", a.Len(), b.Len())
	}
	files, err := ReadBundle(&a)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(files["metrics.json"]), "recovery_wall_us") {
		t.Errorf("stripped metrics still carry wall histograms:\n%s", files["metrics.json"])
	}
	if !strings.Contains(string(files["metrics.json"]), "ckpt.pages") {
		t.Errorf("stripped metrics lost non-wall histogram:\n%s", files["metrics.json"])
	}
}

func TestBundleForSlicesTraceAndSpans(t *testing.T) {
	trc := trace.New(64)
	em := trc.Emitter(0, nil)
	em.Emit(trace.KMalloc, 0x1, 1) // seq 0: before the window
	em.Emit(trace.KMalloc, 0x2, 2) // seq 1
	other := trc.Emitter(3, nil)
	other.Emit(trace.KMalloc, 0x3, 3) // seq 2: other worker
	em.Emit(trace.KFree, 0x2, 0)      // seq 3
	em.Emit(trace.KMalloc, 0x4, 4)    // seq 4: after the window

	snap := &telemetry.Snapshot{
		Counters: map[string]uint64{"x": 1},
		Spans: []telemetry.SpanSnapshot{
			{ID: 1, Kind: "recovery", Event: 7},
			{ID: 2, Kind: "recovery", Event: 9},
		},
	}
	d := &ledger.Diagnosis{ID: 1, Worker: 0, Event: 7, TraceFrom: 1, TraceTo: 4}
	in := BundleFor(d, trc, snap)
	if len(in.Trace) != 2 || in.Trace[0].Seq != 1 || in.Trace[1].Seq != 3 {
		t.Fatalf("trace slice = %+v", in.Trace)
	}
	if len(in.Spans) != 1 || in.Spans[0].Event != 7 {
		t.Fatalf("span slice = %+v", in.Spans)
	}
	if in.Metrics == nil || in.Metrics.Spans != nil {
		t.Fatalf("metrics snapshot: %+v", in.Metrics)
	}
}

func TestWriteBundleFile(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteBundleFile(dir, sampleBundleInput(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "diagnosis-1.tar.gz") {
		t.Fatalf("path = %s", path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	files, err := ReadBundle(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty bundle on disk")
	}
}
