package report

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteFiles materialises the report's referenced artifacts the way the
// paper's Figure 5 names them:
//
//	failure.core          — the fault, stack and context
//	diag.log              — the full diagnosis log
//	mm_trace_orig.log     — allocation/deallocation trace without patches
//	mm_trace_patched.log  — the same region with patches applied
//	illegal_access.log    — every neutralised illegal access
//	report.txt            — the rendered summary report
//
// It returns the paths written.
func (r *Report) WriteFiles(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	for _, a := range r.Artifacts() {
		path := filepath.Join(dir, a.Name)
		if err := os.WriteFile(path, a.Data, 0o644); err != nil {
			return written, err
		}
		written = append(written, path)
	}
	return written, nil
}

// Artifact is one named report file, the unit shared by WriteFiles and the
// postmortem bundle.
type Artifact struct {
	Name string
	Data []byte
}

// Artifacts generates the Figure-5 file set in a fixed order.
func (r *Report) Artifacts() []Artifact {
	orig, patched := r.mmTraces()
	return []Artifact{
		{"failure.core", []byte(r.coreDump())},
		{"diag.log", []byte(strings.Join(r.DiagnosisLog, "\n") + "\n")},
		{"mm_trace_orig.log", []byte(orig)},
		{"mm_trace_patched.log", []byte(patched)},
		{"illegal_access.log", []byte(r.illegalLog())},
		{"report.txt", []byte(r.String())},
	}
}

func (r *Report) coreDump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program: %s\n", r.Program)
	if r.Fault == nil {
		fmt.Fprintf(&b, "no fault recorded\n")
		return b.String()
	}
	fmt.Fprintf(&b, "signal:  %v\n", r.Fault.Kind)
	fmt.Fprintf(&b, "pc:      %s\n", r.Fault.Instr)
	fmt.Fprintf(&b, "addr:    %#x\n", r.Fault.Addr)
	fmt.Fprintf(&b, "event:   #%d\n", r.Fault.Event)
	fmt.Fprintf(&b, "clock:   %d\n", r.Fault.Clock)
	fmt.Fprintf(&b, "message: %s\n", r.Fault.Msg)
	fmt.Fprintf(&b, "backtrace (innermost last):\n")
	for i, fr := range r.Fault.Stack {
		fmt.Fprintf(&b, "  #%d %s\n", len(r.Fault.Stack)-1-i, fr)
	}
	return b.String()
}

func (r *Report) mmTraces() (orig, patched string) {
	var ob, pb strings.Builder
	if r.Validation != nil {
		if r.Validation.Baseline != nil {
			for _, op := range r.Validation.Baseline.Ops {
				fmt.Fprintln(&ob, op)
			}
			if r.Validation.BaselineFault != nil {
				fmt.Fprintf(&ob, "<run ends in failure: %v>\n", r.Validation.BaselineFault.Kind)
			}
		}
		if len(r.Validation.Traces) > 0 {
			for _, op := range r.Validation.Traces[0].Ops {
				fmt.Fprintln(&pb, op)
			}
		}
	}
	return ob.String(), pb.String()
}

func (r *Report) illegalLog() string {
	var b strings.Builder
	if r.Validation == nil || len(r.Validation.Traces) == 0 {
		return "(no validation traces)\n"
	}
	for _, a := range r.Validation.Traces[0].Illegal {
		fmt.Fprintln(&b, a)
	}
	return b.String()
}
