package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firstaid/internal/ledger"
)

func TestWriteFilesProducesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	r := sampleReport(t)
	paths, err := r.WriteFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"failure.core", "diag.log", "mm_trace_orig.log",
		"mm_trace_patched.log", "illegal_access.log", "report.txt",
	}
	if len(paths) != len(want) {
		t.Fatalf("wrote %d files, want %d: %v", len(paths), len(want), paths)
	}
	for _, name := range want {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}

	core, _ := os.ReadFile(filepath.Join(dir, "failure.core"))
	for _, want := range []string{"assertion failure", "util_ldap_cache_check", "backtrace"} {
		if !strings.Contains(string(core), want) {
			t.Errorf("failure.core missing %q", want)
		}
	}
	patched, _ := os.ReadFile(filepath.Join(dir, "mm_trace_patched.log"))
	if !strings.Contains(string(patched), "delayed, patch") {
		t.Errorf("mm_trace_patched.log missing patched op:\n%s", patched)
	}
	orig, _ := os.ReadFile(filepath.Join(dir, "mm_trace_orig.log"))
	if !strings.Contains(string(orig), "run ends in failure") {
		t.Errorf("mm_trace_orig.log missing failure marker:\n%s", orig)
	}
	ill, _ := os.ReadFile(filepath.Join(dir, "illegal_access.log"))
	if !strings.Contains(string(ill), "read of freed object") {
		t.Errorf("illegal_access.log missing accesses:\n%s", ill)
	}
}

func TestWriteFilesEmptyReport(t *testing.T) {
	dir := t.TempDir()
	r := FromDiagnosis(&ledger.Diagnosis{Source: "x"})
	if _, err := r.WriteFiles(dir); err != nil {
		t.Fatal(err)
	}
}
