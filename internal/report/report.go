// Package report builds First-Aid's on-site bug report (paper §5,
// Figure 5): failure core dump, diagnosis summary and log, runtime patch
// details with call-site chains and trigger counts, the with/without-patch
// memory-management trace diff, and the illegal-access summary grouped by
// patch and instruction.
package report

import (
	"fmt"
	"sort"
	"strings"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/validate"
)

// PatchInfo is one patch's entry in the report.
type PatchInfo struct {
	Patch    *patch.Patch
	Site     callsite.Key
	Triggers int // times triggered in the validated buggy region
}

// Report is the assembled bug report.
type Report struct {
	Program        string
	Fault          *proc.Fault
	RecoverySec    float64
	ValidationSec  float64
	DiagnosisLog   []string
	Patches        []PatchInfo
	Validation     *validate.Result
	SiteKey        func(callsite.ID) callsite.Key
	DiagRollbacks  int
	FailureEvent   int
	ValidationOK   bool
	ValidationNote string
}

// Build assembles a report. trace data comes from the validation result's
// first patched iteration; trigger counts come from its Triggers map.
func Build(program string, fault *proc.Fault, diagLog []string, rollbacks int,
	patches []*patch.Patch, val *validate.Result,
	siteKey func(callsite.ID) callsite.Key,
	recoverySec, validationSec float64) *Report {

	r := &Report{
		Program:       program,
		Fault:         fault,
		RecoverySec:   recoverySec,
		ValidationSec: validationSec,
		DiagnosisLog:  diagLog,
		Validation:    val,
		SiteKey:       siteKey,
		DiagRollbacks: rollbacks,
	}
	if fault != nil {
		r.FailureEvent = fault.Event
	}
	if val != nil {
		r.ValidationOK = val.Consistent
		r.ValidationNote = val.Reason
	}

	var trig map[callsite.ID]int
	if val != nil && len(val.Traces) > 0 {
		trig = val.Traces[0].Triggers
	}
	for _, p := range patches {
		info := PatchInfo{Patch: p, Site: p.Site}
		if trig != nil {
			// Match trigger counts by site key through the resolver.
			for site, n := range trig {
				if siteKey != nil && siteKey(site) == p.Site {
					info.Triggers = n
				}
			}
		}
		r.Patches = append(r.Patches, info)
	}
	sort.Slice(r.Patches, func(i, j int) bool { return r.Patches[i].Patch.ID < r.Patches[j].Patch.ID })
	return r
}

// String renders the report in the paper's Figure-5 layout.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bug report for %s:\n", r.Program)

	// 1. Failure core dump.
	fmt.Fprintf(&b, "1. Failure: ")
	if r.Fault != nil {
		fmt.Fprintf(&b, "%v at %s (event #%d)\n", r.Fault.Kind, r.Fault.Instr, r.Fault.Event)
		fmt.Fprintf(&b, "   message: %s\n", r.Fault.Msg)
		fmt.Fprintf(&b, "   stack:   %s\n", strings.Join(r.Fault.Stack, " < "))
	} else {
		fmt.Fprintf(&b, "(none recorded)\n")
	}

	// 2. Diagnosis summary.
	fmt.Fprintf(&b, "2. Diagnosis summary: recovery: %.3f(s); validation: %.3f(s); rollbacks: %d\n",
		r.RecoverySec, r.ValidationSec, r.DiagRollbacks)
	for _, line := range r.DiagnosisLog {
		fmt.Fprintf(&b, "   diag: %s\n", line)
	}

	// 3. Patches.
	fmt.Fprintf(&b, "3. Patch applied: %d runtime patch(es)\n", len(r.Patches))
	for _, pi := range r.Patches {
		fmt.Fprintf(&b, "   Patch %d: %s for %v\n", pi.Patch.ID, pi.Patch.ChangeName(), pi.Patch.Bug)
		for lvl := 0; lvl < callsite.Depth; lvl++ {
			if f := callsite.FormatFrame(pi.Site, lvl); f != "" {
				fmt.Fprintf(&b, "            callsite: %s\n", f)
			}
		}
		if pi.Triggers > 0 {
			fmt.Fprintf(&b, "            (triggered %d times in the buggy region)\n", pi.Triggers)
		}
	}

	// 4. Memory allocation/deallocation trace diff.
	fmt.Fprintf(&b, "4. Memory allocations/deallocations in buggy region (without patch | with patch):\n")
	for _, line := range r.TraceDiff(12) {
		fmt.Fprintf(&b, "   %s\n", line)
	}

	// 5. Illegal access summary.
	fmt.Fprintf(&b, "5. Illegal access trace in buggy region:\n")
	for _, line := range r.IllegalSummary() {
		fmt.Fprintf(&b, "   %s\n", line)
	}

	if r.ValidationOK {
		fmt.Fprintf(&b, "Validation: consistent across randomized re-executions\n")
	} else {
		fmt.Fprintf(&b, "Validation: FAILED (%s); patches removed\n", r.ValidationNote)
	}
	return b.String()
}

// TraceDiff renders up to max paired lines of the without/with-patch
// memory-management traces. Lines where a patch fired come first (the
// `(delayed, patch)` rows of the paper's Figure 5); remaining slots show
// other divergences (the randomized allocator shifts every address, so
// plain divergence alone is uninformative).
func (r *Report) TraceDiff(max int) []string {
	if r.Validation == nil || r.Validation.Baseline == nil || len(r.Validation.Traces) == 0 {
		return []string{"(no validation traces)"}
	}
	orig := r.Validation.Baseline.Ops
	pat := r.Validation.Traces[0].Ops
	n := len(orig)
	if len(pat) > n {
		n = len(pat)
	}
	line := func(i int) string {
		var l, rt string
		if i < len(orig) {
			l = orig[i].String()
		}
		if i < len(pat) {
			rt = pat[i].String()
		}
		return fmt.Sprintf("%-44s | %s", l, rt)
	}

	var out []string
	patchedShown := 0
	for i := 0; i < n && len(out) < max; i++ {
		if i < len(pat) && (pat[i].Patched || pat[i].Delayed) {
			out = append(out, line(i))
			patchedShown++
		}
	}
	for i := 0; i < n && len(out) < max; i++ {
		if i < len(pat) && (pat[i].Patched || pat[i].Delayed) {
			continue // already shown
		}
		var l, rt string
		if i < len(orig) {
			l = orig[i].String()
		}
		if i < len(pat) {
			rt = pat[i].String()
		}
		if l != rt {
			out = append(out, line(i))
		}
	}
	if len(out) == 0 {
		return []string{"(traces identical)"}
	}
	if len(out) == max {
		out = append(out, fmt.Sprintf("... (%d operations total; full traces in validation data)", n))
	}
	return out
}

// IllegalSummary groups the illegal accesses of the first patched run by
// patch site and instruction, Figure-5 item-5 style.
func (r *Report) IllegalSummary() []string {
	if r.Validation == nil || len(r.Validation.Traces) == 0 {
		return []string{"(no validation traces)"}
	}
	tr := r.Validation.Traces[0]
	if len(tr.Illegal) == 0 {
		return []string{"(no illegal accesses recorded — patch neutralised nothing in this window)"}
	}
	bySite := tr.IllegalBySite()
	sites := make([]callsite.ID, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var out []string
	for _, s := range sites {
		accs := bySite[s]
		reads, writes := 0, 0
		instrs := map[string]int{}
		for _, a := range accs {
			if a.Kind.IsWrite() {
				writes++
			} else {
				reads++
			}
			instrs[a.Instr]++
		}
		label := fmt.Sprintf("site %d", s)
		if r.SiteKey != nil {
			label = r.SiteKey(s).String()
		}
		out = append(out, fmt.Sprintf("patch at %s: %d accesses (%d read, %d write):", label, len(accs), reads, writes))
		names := make([]string, 0, len(instrs))
		for in := range instrs {
			names = append(names, in)
		}
		sort.Strings(names)
		for _, in := range names {
			out = append(out, fmt.Sprintf("  %d access(es) from %s", instrs[in], in))
		}
	}
	return out
}

// IllegalByKind tallies the first patched run's illegal accesses by class.
func (r *Report) IllegalByKind() map[allocext.IllegalKind]int {
	m := map[allocext.IllegalKind]int{}
	if r.Validation == nil || len(r.Validation.Traces) == 0 {
		return m
	}
	for _, a := range r.Validation.Traces[0].Illegal {
		m[a.Kind]++
	}
	return m
}
