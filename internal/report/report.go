// Package report builds First-Aid's on-site bug report (paper §5,
// Figure 5): failure core dump, diagnosis summary and log, runtime patch
// details with call-site chains and trigger counts, the with/without-patch
// memory-management trace diff, the guard-page evidence that claimed the
// fault (when the sampled tier did), and the illegal-access summary
// grouped by patch and instruction.
//
// A Report is a *render* of a ledger.Diagnosis — the ledger entry is the
// system of record, the report its human-readable Figure-5 projection.
// Bundle (bundle.go) packages the same entry as a portable postmortem
// tar.gz.
package report

import (
	"fmt"
	"sort"
	"strings"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/ledger"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/validate"
)

// PatchInfo is one patch's entry in the report.
type PatchInfo struct {
	Patch    *patch.Patch
	Site     callsite.Key
	Triggers int // times triggered in the validated buggy region
}

// Report is the assembled bug report.
type Report struct {
	DiagnosisID    uint64
	Program        string
	Fault          *proc.Fault
	RecoverySec    float64
	ValidationSec  float64
	DiagnosisLog   []string
	Patches        []PatchInfo
	Validation     *validate.Result
	SiteKey        func(callsite.ID) callsite.Key
	DiagRollbacks  int
	FailureEvent   int
	HasValidation  bool
	ValidationOK   bool
	ValidationNote string

	// Guard is the guard-page evidence that claimed the fault, nil when
	// the fault was trapped the ordinary way; Phase1Skipped records that
	// the evidence let diagnosis skip the checkpoint search.
	Guard         *ledger.GuardInfo
	Phase1Skipped bool
}

// FromDiagnosis renders a ledger entry as a report. The entry's
// render-only references (fault, validation result, pool patches, site
// resolver) supply the trace-level detail its wire form omits.
func FromDiagnosis(d *ledger.Diagnosis) *Report {
	if d == nil {
		return nil
	}
	r := &Report{
		DiagnosisID:   d.ID,
		Program:       d.Source,
		Fault:         d.FaultRef,
		RecoverySec:   d.RecoverySec,
		ValidationSec: d.ValidationSec,
		DiagnosisLog:  d.DiagLog,
		Validation:    d.ValidationRef,
		SiteKey:       d.SiteKey,
		DiagRollbacks: d.Rollbacks,
		FailureEvent:  d.Event,
	}
	if v := d.ValidationRef; v != nil {
		r.HasValidation = true
		r.ValidationOK = v.Consistent
		r.ValidationNote = v.Reason
	}
	if c := d.Cond(ledger.GuardEvidence); c != nil {
		r.Guard = c.Guard
	}
	r.Phase1Skipped = d.Cond(ledger.Phase1Skipped) != nil

	var trig map[callsite.ID]int
	if v := d.ValidationRef; v != nil && len(v.Traces) > 0 {
		trig = v.Traces[0].Triggers
	}
	for _, p := range d.PatchRefs {
		info := PatchInfo{Patch: p, Site: p.Site}
		if trig != nil {
			// Match trigger counts by site key through the resolver.
			for site, n := range trig {
				if r.SiteKey != nil && r.SiteKey(site) == p.Site {
					info.Triggers = n
				}
			}
		}
		r.Patches = append(r.Patches, info)
	}
	sort.Slice(r.Patches, func(i, j int) bool { return r.Patches[i].Patch.ID < r.Patches[j].Patch.ID })
	return r
}

// String renders the report in the paper's Figure-5 layout.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Bug report for %s:\n", r.Program)

	// 1. Failure core dump.
	fmt.Fprintf(&b, "1. Failure: ")
	if r.Fault != nil {
		fmt.Fprintf(&b, "%v at %s (event #%d)\n", r.Fault.Kind, r.Fault.Instr, r.Fault.Event)
		fmt.Fprintf(&b, "   message: %s\n", r.Fault.Msg)
		fmt.Fprintf(&b, "   stack:   %s\n", strings.Join(r.Fault.Stack, " < "))
	} else {
		fmt.Fprintf(&b, "(none recorded)\n")
	}

	// 2. Diagnosis summary.
	fmt.Fprintf(&b, "2. Diagnosis summary: recovery: %.3f(s); validation: %.3f(s); rollbacks: %d\n",
		r.RecoverySec, r.ValidationSec, r.DiagRollbacks)
	for _, line := range r.DiagnosisLog {
		fmt.Fprintf(&b, "   diag: %s\n", line)
	}

	// 3. Patches.
	fmt.Fprintf(&b, "3. Patch applied: %d runtime patch(es)\n", len(r.Patches))
	for _, pi := range r.Patches {
		fmt.Fprintf(&b, "   Patch %d: %s for %v\n", pi.Patch.ID, pi.Patch.ChangeName(), pi.Patch.Bug)
		for lvl := 0; lvl < callsite.Depth; lvl++ {
			if f := callsite.FormatFrame(pi.Site, lvl); f != "" {
				fmt.Fprintf(&b, "            callsite: %s\n", f)
			}
		}
		if pi.Triggers > 0 {
			fmt.Fprintf(&b, "            (triggered %d times in the buggy region)\n", pi.Triggers)
		}
	}

	// 4. Memory allocation/deallocation trace diff.
	fmt.Fprintf(&b, "4. Memory allocations/deallocations in buggy region (without patch | with patch):\n")
	for _, line := range r.TraceDiff(12) {
		fmt.Fprintf(&b, "   %s\n", line)
	}

	// 5. Illegal access summary.
	fmt.Fprintf(&b, "5. Illegal access trace in buggy region:\n")
	for _, line := range r.IllegalSummary() {
		fmt.Fprintf(&b, "   %s\n", line)
	}

	// Guard-page evidence, when the sampled tier claimed the fault.
	if r.Guard != nil {
		fmt.Fprintf(&b, "GUARD EVIDENCE: sampled guard page claimed the fault\n")
		fmt.Fprintf(&b, "   class:       %s\n", r.Guard.Bug)
		fmt.Fprintf(&b, "   site:        %s (%s attribution)\n", r.Guard.Site, r.Guard.Attribution)
		fmt.Fprintf(&b, "   clock:       %d (process clock of the decisive operation)\n", r.Guard.Clock)
		if r.Phase1Skipped {
			fmt.Fprintf(&b, "   phase 1:     skipped — evidence confirmed by one scoped re-execution\n")
		}
	}

	switch {
	case !r.HasValidation:
		fmt.Fprintf(&b, "Validation: skipped (validation disabled)\n")
	case r.ValidationOK:
		fmt.Fprintf(&b, "Validation: consistent across randomized re-executions\n")
	default:
		fmt.Fprintf(&b, "Validation: FAILED (%s); patches removed\n", r.ValidationNote)
	}
	return b.String()
}

// TraceDiff renders up to max paired lines of the without/with-patch
// memory-management traces. Lines where a patch fired come first (the
// `(delayed, patch)` rows of the paper's Figure 5); remaining slots show
// other divergences (the randomized allocator shifts every address, so
// plain divergence alone is uninformative).
func (r *Report) TraceDiff(max int) []string {
	if r.Validation == nil || r.Validation.Baseline == nil || len(r.Validation.Traces) == 0 {
		return []string{"(no validation traces)"}
	}
	orig := r.Validation.Baseline.Ops
	pat := r.Validation.Traces[0].Ops
	n := len(orig)
	if len(pat) > n {
		n = len(pat)
	}
	line := func(i int) string {
		var l, rt string
		if i < len(orig) {
			l = orig[i].String()
		}
		if i < len(pat) {
			rt = pat[i].String()
		}
		return fmt.Sprintf("%-44s | %s", l, rt)
	}

	var out []string
	patchedShown := 0
	for i := 0; i < n && len(out) < max; i++ {
		if i < len(pat) && (pat[i].Patched || pat[i].Delayed) {
			out = append(out, line(i))
			patchedShown++
		}
	}
	for i := 0; i < n && len(out) < max; i++ {
		if i < len(pat) && (pat[i].Patched || pat[i].Delayed) {
			continue // already shown
		}
		var l, rt string
		if i < len(orig) {
			l = orig[i].String()
		}
		if i < len(pat) {
			rt = pat[i].String()
		}
		if l != rt {
			out = append(out, line(i))
		}
	}
	if len(out) == 0 {
		return []string{"(traces identical)"}
	}
	if len(out) == max {
		out = append(out, fmt.Sprintf("... (%d operations total; full traces in validation data)", n))
	}
	return out
}

// IllegalSummary groups the illegal accesses of the first patched run by
// patch site and instruction, Figure-5 item-5 style.
func (r *Report) IllegalSummary() []string {
	if r.Validation == nil || len(r.Validation.Traces) == 0 {
		return []string{"(no validation traces)"}
	}
	tr := r.Validation.Traces[0]
	if len(tr.Illegal) == 0 {
		return []string{"(no illegal accesses recorded — patch neutralised nothing in this window)"}
	}
	bySite := tr.IllegalBySite()
	sites := make([]callsite.ID, 0, len(bySite))
	for s := range bySite {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })

	var out []string
	for _, s := range sites {
		accs := bySite[s]
		reads, writes := 0, 0
		instrs := map[string]int{}
		for _, a := range accs {
			if a.Kind.IsWrite() {
				writes++
			} else {
				reads++
			}
			instrs[a.Instr]++
		}
		label := fmt.Sprintf("site %d", s)
		if r.SiteKey != nil {
			label = r.SiteKey(s).String()
		}
		out = append(out, fmt.Sprintf("patch at %s: %d accesses (%d read, %d write):", label, len(accs), reads, writes))
		names := make([]string, 0, len(instrs))
		for in := range instrs {
			names = append(names, in)
		}
		sort.Strings(names)
		for _, in := range names {
			out = append(out, fmt.Sprintf("  %d access(es) from %s", instrs[in], in))
		}
	}
	return out
}

// IllegalByKind tallies the first patched run's illegal accesses by class.
func (r *Report) IllegalByKind() map[allocext.IllegalKind]int {
	m := map[allocext.IllegalKind]int{}
	if r.Validation == nil || len(r.Validation.Traces) == 0 {
		return m
	}
	for _, a := range r.Validation.Traces[0].Illegal {
		m[a.Kind]++
	}
	return m
}
