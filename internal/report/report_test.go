package report

import (
	"strings"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/ledger"
	"firstaid/internal/mmbug"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/validate"
)

func sampleValidation(site callsite.ID) *validate.Result {
	base := allocext.NewTrace()
	base.Ops = []allocext.MMOp{
		{Alloc: true, Site: site, Addr: 0x1000, Size: 64},
		{Site: site, Addr: 0x1000, Size: 64},
	}
	pat := allocext.NewTrace()
	pat.Ops = []allocext.MMOp{
		{Alloc: true, Site: site, Addr: 0x1000, Size: 64},
		{Site: site, Addr: 0x1000, Size: 64, Patched: true, Delayed: true},
	}
	pat.Triggers[site] = 44
	pat.Illegal = []allocext.IllegalAccess{
		{Kind: allocext.FreedRead, PatchSite: site, Instr: "util_ald_cache_fetch:read", Obj: 0x1000, Offset: 8, Len: 4},
		{Kind: allocext.FreedRead, PatchSite: site, Instr: "util_ald_cache_fetch:read", Obj: 0x1000, Offset: 12, Len: 4},
		{Kind: allocext.FreedWrite, PatchSite: site, Instr: "purge:clear", Obj: 0x1000, Offset: 0, Len: 4},
	}
	return &validate.Result{
		Consistent:    true,
		Traces:        []*allocext.Trace{pat},
		Baseline:      base,
		BaselineFault: &proc.Fault{Kind: proc.AssertFailure, Msg: "original"},
	}
}

// sampleDiagnosis assembles a closed ledger entry the way the supervisor
// does: wire conditions plus the render-only references reports need.
func sampleDiagnosis(t *testing.T) *ledger.Diagnosis {
	t.Helper()
	tab := callsite.NewTable()
	key := callsite.Key{"util_ald_free", "util_ald_cache_purge", "util_ald_cache_insert"}
	site := tab.Intern(key)
	p := patch.New(mmbug.DanglingRead, key)
	p.ID = 1
	fault := &proc.Fault{
		Kind:  proc.AssertFailure,
		Msg:   "revisit: node 0 key changed",
		Stack: []string{"ap_process_request", "util_ldap_cache_check"},
		Instr: "util_ldap_cache_check:check_key",
		Event: 439,
		Clock: 4400,
	}
	val := sampleValidation(site)

	l := ledger.New(4)
	e := l.Begin(ledger.Meta{Source: "apache", Mode: "sync", Event: 439})
	e.Add(ledger.Condition{Type: ledger.FaultObserved, Clock: fault.Clock, Fault: ledger.NewFaultInfo(fault)})
	e.Run()
	e.Add(ledger.Condition{Type: ledger.CheckpointSelected, Clock: 4000, Checkpoint: &ledger.CheckpointInfo{Seq: 3, Clock: 4000, Cursor: 430}})
	e.Add(ledger.Condition{Type: ledger.PatchGenerated, Clock: fault.Clock, Patches: []ledger.PatchInfo{ledger.NewPatchInfo(p)}})
	e.Add(ledger.Condition{Type: ledger.ValidationPassed, Clock: 4000, Validation: ledger.NewValidationInfo(val)})
	e.Update(func(d *ledger.Diagnosis) {
		d.Rollbacks = 28
		d.DiagLog = []string{"phase 1 …", "phase 2 …"}
		d.RecoverySec = 0.108
		d.ValidationSec = 0.160
		d.FaultRef = fault
		d.ValidationRef = val
		d.PatchRefs = []*patch.Patch{p}
		d.SiteKey = tab.Key
	})
	e.Close(true, "recovered", 0, 0)
	return e.Snapshot()
}

func sampleReport(t *testing.T) *Report {
	t.Helper()
	return FromDiagnosis(sampleDiagnosis(t))
}

func TestReportHasAllFiveSections(t *testing.T) {
	text := sampleReport(t).String()
	for _, want := range []string{
		"1. Failure:", "2. Diagnosis summary", "3. Patch applied",
		"4. Memory allocations", "5. Illegal access",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing section %q", want)
		}
	}
}

func TestReportContent(t *testing.T) {
	r := sampleReport(t)
	text := r.String()
	for _, want := range []string{
		"assertion failure",
		"event #439",
		"rollbacks: 28",
		"delay free",
		"util_ald_free",
		"util_ald_cache_purge",
		"(triggered 44 times",
		"(delayed, patch",
		"2 access(es) from util_ald_cache_fetch:read",
		"1 access(es) from purge:clear",
		"3 accesses (2 read, 1 write)",
		"consistent across randomized re-executions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in report:\n%s", want, text)
		}
	}
}

func TestFailedValidationRendering(t *testing.T) {
	r := sampleReport(t)
	r.ValidationOK = false
	r.ValidationNote = "iteration 1: patch triggered 3 times vs 44"
	text := r.String()
	if !strings.Contains(text, "FAILED") || !strings.Contains(text, "patches removed") {
		t.Errorf("failed validation not rendered:\n%s", text)
	}
}

func TestIllegalByKind(t *testing.T) {
	r := sampleReport(t)
	kinds := r.IllegalByKind()
	if kinds[allocext.FreedRead] != 2 || kinds[allocext.FreedWrite] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTraceDiffHighlightsPatchedOps(t *testing.T) {
	r := sampleReport(t)
	lines := r.TraceDiff(10)
	found := false
	for _, l := range lines {
		if strings.Contains(l, "delayed, patch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff missing patched op: %v", lines)
	}
}

func TestEmptyReportDoesNotPanic(t *testing.T) {
	r := FromDiagnosis(&ledger.Diagnosis{Source: "x"})
	text := r.String()
	if !strings.Contains(text, "(none recorded)") {
		t.Errorf("empty fault rendering:\n%s", text)
	}
	if len(r.IllegalSummary()) == 0 || len(r.TraceDiff(5)) == 0 {
		t.Fatal("helpers returned nothing")
	}
	if FromDiagnosis(nil) != nil {
		t.Fatal("FromDiagnosis(nil) != nil")
	}
}

func TestValidationSkippedRendering(t *testing.T) {
	d := sampleDiagnosis(t)
	d.ValidationRef = nil
	text := FromDiagnosis(d).String()
	if !strings.Contains(text, "Validation: skipped") {
		t.Errorf("disabled validation not rendered as skipped:\n%s", text)
	}
}

// guardDiagnosis adds guard-claimed evidence to the sample entry the way
// the supervisor records a sampled guard-page hit.
func guardDiagnosis(t *testing.T) *ledger.Diagnosis {
	t.Helper()
	d := sampleDiagnosis(t)
	guard := ledger.Condition{
		Type:  ledger.GuardEvidence,
		Clock: 4390,
		Guard: &ledger.GuardInfo{
			Bug:         mmbug.DanglingRead.String(),
			Site:        "util_ald_free<util_ald_cache_purge<util_ald_cache_insert",
			Clock:       4390,
			Attribution: "quarantined-free-site",
		},
	}
	skip := ledger.Condition{Type: ledger.Phase1Skipped, Clock: 4390, Message: "guard evidence confirmed"}
	d.Conditions = append(d.Conditions[:1], append([]ledger.Condition{guard, skip}, d.Conditions[1:]...)...)
	d.FastPath = true
	return d
}

func TestGuardEvidenceSection(t *testing.T) {
	text := FromDiagnosis(guardDiagnosis(t)).String()
	for _, want := range []string{
		"GUARD EVIDENCE: sampled guard page claimed the fault",
		"class:       dangling pointer read",
		"util_ald_free<util_ald_cache_purge<util_ald_cache_insert (quarantined-free-site attribution)",
		"clock:       4390",
		"phase 1:     skipped",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("guard section missing %q:\n%s", want, text)
		}
	}
}

func TestNoGuardSectionWithoutEvidence(t *testing.T) {
	text := sampleReport(t).String()
	if strings.Contains(text, "GUARD EVIDENCE") {
		t.Errorf("guard section rendered without guard evidence:\n%s", text)
	}
}
