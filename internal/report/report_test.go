package report

import (
	"strings"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/mmbug"
	"firstaid/internal/patch"
	"firstaid/internal/proc"
	"firstaid/internal/validate"
)

func sampleValidation(site callsite.ID) *validate.Result {
	base := allocext.NewTrace()
	base.Ops = []allocext.MMOp{
		{Alloc: true, Site: site, Addr: 0x1000, Size: 64},
		{Site: site, Addr: 0x1000, Size: 64},
	}
	pat := allocext.NewTrace()
	pat.Ops = []allocext.MMOp{
		{Alloc: true, Site: site, Addr: 0x1000, Size: 64},
		{Site: site, Addr: 0x1000, Size: 64, Patched: true, Delayed: true},
	}
	pat.Triggers[site] = 44
	pat.Illegal = []allocext.IllegalAccess{
		{Kind: allocext.FreedRead, PatchSite: site, Instr: "util_ald_cache_fetch:read", Obj: 0x1000, Offset: 8, Len: 4},
		{Kind: allocext.FreedRead, PatchSite: site, Instr: "util_ald_cache_fetch:read", Obj: 0x1000, Offset: 12, Len: 4},
		{Kind: allocext.FreedWrite, PatchSite: site, Instr: "purge:clear", Obj: 0x1000, Offset: 0, Len: 4},
	}
	return &validate.Result{
		Consistent:    true,
		Traces:        []*allocext.Trace{pat},
		Baseline:      base,
		BaselineFault: &proc.Fault{Kind: proc.AssertFailure, Msg: "original"},
	}
}

func sampleReport(t *testing.T) *Report {
	t.Helper()
	tab := callsite.NewTable()
	key := callsite.Key{"util_ald_free", "util_ald_cache_purge", "util_ald_cache_insert"}
	site := tab.Intern(key)
	p := patch.New(mmbug.DanglingRead, key)
	p.ID = 1
	fault := &proc.Fault{
		Kind:  proc.AssertFailure,
		Msg:   "revisit: node 0 key changed",
		Stack: []string{"ap_process_request", "util_ldap_cache_check"},
		Instr: "util_ldap_cache_check:check_key",
		Event: 439,
	}
	return Build("apache", fault, []string{"phase 1 …", "phase 2 …"}, 28,
		[]*patch.Patch{p}, sampleValidation(site), tab.Key, 0.108, 0.160)
}

func TestReportHasAllFiveSections(t *testing.T) {
	text := sampleReport(t).String()
	for _, want := range []string{
		"1. Failure:", "2. Diagnosis summary", "3. Patch applied",
		"4. Memory allocations", "5. Illegal access",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing section %q", want)
		}
	}
}

func TestReportContent(t *testing.T) {
	r := sampleReport(t)
	text := r.String()
	for _, want := range []string{
		"assertion failure",
		"event #439",
		"rollbacks: 28",
		"delay free",
		"util_ald_free",
		"util_ald_cache_purge",
		"(triggered 44 times",
		"(delayed, patch",
		"2 access(es) from util_ald_cache_fetch:read",
		"1 access(es) from purge:clear",
		"3 accesses (2 read, 1 write)",
		"consistent across randomized re-executions",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in report:\n%s", want, text)
		}
	}
}

func TestFailedValidationRendering(t *testing.T) {
	r := sampleReport(t)
	r.ValidationOK = false
	r.ValidationNote = "iteration 1: patch triggered 3 times vs 44"
	text := r.String()
	if !strings.Contains(text, "FAILED") || !strings.Contains(text, "patches removed") {
		t.Errorf("failed validation not rendered:\n%s", text)
	}
}

func TestIllegalByKind(t *testing.T) {
	r := sampleReport(t)
	kinds := r.IllegalByKind()
	if kinds[allocext.FreedRead] != 2 || kinds[allocext.FreedWrite] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestTraceDiffHighlightsPatchedOps(t *testing.T) {
	r := sampleReport(t)
	lines := r.TraceDiff(10)
	found := false
	for _, l := range lines {
		if strings.Contains(l, "delayed, patch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff missing patched op: %v", lines)
	}
}

func TestEmptyReportDoesNotPanic(t *testing.T) {
	r := Build("x", nil, nil, 0, nil, nil, nil, 0, 0)
	text := r.String()
	if !strings.Contains(text, "(none recorded)") {
		t.Errorf("empty fault rendering:\n%s", text)
	}
	if len(r.IllegalSummary()) == 0 || len(r.TraceDiff(5)) == 0 {
		t.Fatal("helpers returned nothing")
	}
}
