package stages

import (
	"sync/atomic"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// ProbeMachine is a cloned machine a speculative hypothesis runs on. Its
// methods are called from the hypothesis goroutine only, except SetCancel
// (before launch) and SiteKey/Telemetry (after the goroutine has finished).
type ProbeMachine interface {
	MarkHeap() error
	ReExecute(cs *allocext.ChangeSet, until int) diagnosis.Outcome
	SiteKey(id callsite.ID) callsite.Key
	SetCancel(c *atomic.Bool)
	Telemetry() *telemetry.Registry
}

// CloneSource mints probe machines for the Speculator. All methods are
// called on the supervisor goroutine.
type CloneSource interface {
	// Rollback reinstates cp on the source machine, so the next SpawnProbe
	// clones exactly the checkpoint state (cloning a rollback is the COW
	// dual of rolling back a clone).
	Rollback(cp *checkpoint.Checkpoint)
	// SpawnProbe clones the source machine as it stands.
	SpawnProbe() ProbeMachine
	// TakeStandby surrenders the pre-warmed standby clone if it was taken
	// at exactly cp, bringing its replay log level with the source first.
	// Returns nil when no matching standby exists; the standby is consumed
	// either way only on a match.
	TakeStandby(cp *checkpoint.Checkpoint) ProbeMachine
	// InternSite maps a clone-rendered call-site key into the source
	// machine's interning table, translating probe evidence into IDs the
	// engine can use.
	InternSite(k callsite.Key) callsite.ID
}

// SpecStats summarizes one recovery's speculative execution.
type SpecStats struct {
	Launched    int // hypotheses started on clones
	Won         int // outcomes the engine consumed
	Cancelled   int // losers torn down by CancelAll
	StandbyHits int // launches served by the pre-warmed standby clone
}

// hypothesis is one racing probe: a clone re-executing a prefetched
// request on its own goroutine.
type hypothesis struct {
	seq     uint64
	req     *diagnosis.ProbeReq
	pm      ProbeMachine
	standby bool
	cancel  atomic.Bool
	done    chan struct{}

	// Written by the hypothesis goroutine before done closes; read only
	// after <-done.
	out     diagnosis.Outcome
	markErr error
}

// Speculator implements diagnosis.Prober by racing prefetched probes on
// COW clones of a source machine. The engine still consumes outcomes
// strictly in serial program order, so speculation changes wall-clock
// time, never verdicts: every consumed outcome advances the same logs,
// ledger conditions and rollback budget the serial re-execution would
// have. All Speculator methods run on the supervisor goroutine; only the
// per-hypothesis goroutines touch the clones.
type Speculator struct {
	src CloneSource
	tel *telemetry.Registry
	trc trace.Emitter

	inflight []*hypothesis
	seq      uint64
	stats    SpecStats
	total    SpecStats

	metLaunched  *telemetry.Counter
	metWon       *telemetry.Counter
	metCancelled *telemetry.Counter
	metStandby   *telemetry.Counter
	active       *telemetry.Gauge
}

// NewSpeculator creates a speculator over src. tel (nil-safe) receives the
// spec.* counters and absorbs each finished clone's telemetry; trc emits
// launch/win/cancel records on the supervising worker's track.
func NewSpeculator(src CloneSource, tel *telemetry.Registry, trc trace.Emitter) *Speculator {
	return &Speculator{
		src:          src,
		tel:          tel,
		trc:          trc,
		metLaunched:  tel.Counter("spec.launched"),
		metWon:       tel.Counter("spec.won"),
		metCancelled: tel.Counter("spec.cancelled"),
		metStandby:   tel.Counter("spec.standby_hits"),
		active:       tel.Gauge("spec.active"),
	}
}

// Prefetch implements diagnosis.Prober: every announced request is
// launched on its own clone immediately. The first request matching the
// pre-warmed standby clone rides it at zero clone cost; the rest roll the
// source machine back to their checkpoint and clone it.
func (sp *Speculator) Prefetch(reqs []*diagnosis.ProbeReq) {
	for _, r := range reqs {
		h := &hypothesis{req: r, done: make(chan struct{})}
		if pm := sp.src.TakeStandby(r.Ckpt); pm != nil {
			h.pm, h.standby = pm, true
			sp.stats.StandbyHits++
			sp.metStandby.Inc()
		} else {
			sp.src.Rollback(r.Ckpt)
			h.pm = sp.src.SpawnProbe()
		}
		h.pm.SetCancel(&h.cancel)
		sp.seq++
		h.seq = sp.seq
		sp.stats.Launched++
		sp.metLaunched.Inc()
		sp.active.Add(1)
		sp.trc.Emit(trace.KSpecLaunch, h.seq, uint64(r.Ckpt.Seq))
		sp.inflight = append(sp.inflight, h)
		go func(h *hypothesis) {
			defer close(h.done)
			// Heap marking runs on the clone goroutine: marking after
			// cloning leaves the same heap image as marking after the
			// rollback the serial pipeline would have done.
			if h.req.Mark {
				h.markErr = h.pm.MarkHeap()
			}
			h.out = h.pm.ReExecute(h.req.CS, h.req.Until)
		}(h)
	}
}

// Take implements diagnosis.Prober: it joins the hypothesis launched for
// r, folds the clone's telemetry into the source registry, and returns the
// outcome with its evidence translated into source-machine call-site IDs.
func (sp *Speculator) Take(r *diagnosis.ProbeReq) (diagnosis.ProbeResult, bool) {
	for i, h := range sp.inflight {
		if h.req != r {
			continue
		}
		<-h.done
		sp.inflight = append(sp.inflight[:i], sp.inflight[i+1:]...)
		sp.retire(h)
		sp.stats.Won++
		sp.metWon.Inc()
		var sb uint64
		if h.standby {
			sb = 1
		}
		sp.trc.Emit(trace.KSpecWin, h.seq, sb)
		out := h.out
		sp.translate(&out, h.pm)
		return diagnosis.ProbeResult{Out: out, MarkErr: h.markErr}, true
	}
	return diagnosis.ProbeResult{}, false
}

// CancelAll implements diagnosis.Prober: losers are flagged, joined and
// accounted. Joining (not abandoning) the goroutines keeps clone telemetry
// and the active gauge exact and lets the caller reuse the source machine
// immediately.
func (sp *Speculator) CancelAll() {
	for _, h := range sp.inflight {
		h.cancel.Store(true)
	}
	for _, h := range sp.inflight {
		<-h.done
		sp.retire(h)
		sp.stats.Cancelled++
		sp.metCancelled.Inc()
		sp.trc.Emit(trace.KSpecCancel, h.seq, uint64(h.req.Ckpt.Seq))
	}
	sp.inflight = sp.inflight[:0]
}

// retire absorbs a finished hypothesis's clone telemetry.
func (sp *Speculator) retire(h *hypothesis) {
	sp.active.Add(-1)
	if t := h.pm.Telemetry(); t != nil && sp.tel != nil {
		sp.tel.Merge(t)
	}
}

// translate rewrites the outcome's manifest call-sites from clone IDs to
// source-machine IDs. Site IDs are per-table; the key strings are the
// shared vocabulary.
func (sp *Speculator) translate(out *diagnosis.Outcome, pm ProbeMachine) {
	for i := range out.Manifests.All {
		m := &out.Manifests.All[i]
		if m.AllocSite != 0 {
			m.AllocSite = sp.src.InternSite(pm.SiteKey(m.AllocSite))
		}
		if m.FreeSite != 0 {
			m.FreeSite = sp.src.InternSite(pm.SiteKey(m.FreeSite))
		}
	}
}

// InFlight returns the number of hypotheses currently racing.
func (sp *Speculator) InFlight() int { return len(sp.inflight) }

// Episode returns the stats accumulated since the previous Episode call
// and resets them — one call per recovery, after the diagnosis resolves.
func (sp *Speculator) Episode() SpecStats {
	st := sp.stats
	sp.total.Launched += st.Launched
	sp.total.Won += st.Won
	sp.total.Cancelled += st.Cancelled
	sp.total.StandbyHits += st.StandbyHits
	sp.stats = SpecStats{}
	return st
}

// Totals returns the lifetime stats across every episode, including the
// one in flight.
func (sp *Speculator) Totals() SpecStats {
	t := sp.total
	t.Launched += sp.stats.Launched
	t.Won += sp.stats.Won
	t.Cancelled += sp.stats.Cancelled
	t.StandbyHits += sp.stats.StandbyHits
	return t
}
