package stages_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/mmbug"
	"firstaid/internal/stages"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// fakeProbe implements stages.ProbeMachine: a scripted outcome, optionally
// hanging mid-re-execute until the cancel flag trips — the shape of a
// losing hypothesis torn down by CancelAll.
type fakeProbe struct {
	sites   *callsite.Table
	out     diagnosis.Outcome
	hang    bool
	markErr error
	tel     *telemetry.Registry

	cancel *atomic.Bool
	marked atomic.Bool
}

func (p *fakeProbe) MarkHeap() error {
	p.marked.Store(true)
	return p.markErr
}

func (p *fakeProbe) ReExecute(cs *allocext.ChangeSet, until int) diagnosis.Outcome {
	if p.hang {
		for !p.cancel.Load() {
			time.Sleep(50 * time.Microsecond)
		}
		return diagnosis.Outcome{Interrupted: true}
	}
	return p.out
}

func (p *fakeProbe) SiteKey(id callsite.ID) callsite.Key { return p.sites.Key(id) }
func (p *fakeProbe) SetCancel(c *atomic.Bool)            { p.cancel = c }
func (p *fakeProbe) Telemetry() *telemetry.Registry      { return p.tel }

// fakeSource implements stages.CloneSource over a queue of fake probes.
type fakeSource struct {
	t     *testing.T
	sites *callsite.Table

	standby   *fakeProbe
	standbyCp *checkpoint.Checkpoint

	queue  []*fakeProbe
	rolled []*checkpoint.Checkpoint
}

func (s *fakeSource) Rollback(cp *checkpoint.Checkpoint) { s.rolled = append(s.rolled, cp) }

func (s *fakeSource) SpawnProbe() stages.ProbeMachine {
	if len(s.queue) == 0 {
		s.t.Fatal("SpawnProbe called with an empty queue")
	}
	p := s.queue[0]
	s.queue = s.queue[1:]
	return p
}

func (s *fakeSource) TakeStandby(cp *checkpoint.Checkpoint) stages.ProbeMachine {
	if s.standby == nil || s.standbyCp != cp {
		return nil
	}
	sb := s.standby
	s.standby, s.standbyCp = nil, nil
	return sb
}

func (s *fakeSource) InternSite(k callsite.Key) callsite.ID { return s.sites.Intern(k) }

// TestSpeculatorRace pins the speculation commit protocol against fakes:
// the standby clone serves the first matching launch, other launches
// roll back and clone, a consumed outcome arrives with its call-sites
// translated into the source table, a hanging loser is torn down by
// CancelAll, and the accounting (stats, counters, active gauge, in-flight
// set) balances to zero.
func TestSpeculatorRace(t *testing.T) {
	cps := ladder(0, 1, 2)
	probeSites := callsite.NewTable()
	probeSite := probeSites.Intern(callsite.Key{"leaf", "mid", "outer"})

	winner := &fakeProbe{
		sites: probeSites,
		out: diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{
			Bug: mmbug.DoubleFree, FreeSite: probeSite,
		})},
		markErr: errors.New("mark failed on clone"),
	}
	loser := &fakeProbe{sites: probeSites, hang: true}
	standby := &fakeProbe{sites: probeSites, out: diagnosis.Outcome{}}

	src := &fakeSource{
		t:     t,
		sites: callsite.NewTable(),
		// The standby was pre-warmed at the newest checkpoint.
		standby: standby, standbyCp: cps[2],
		queue: []*fakeProbe{winner, loser},
	}
	tel := telemetry.NewRegistry()
	sp := stages.NewSpeculator(src, tel, trace.Emitter{})

	reqs := []*diagnosis.ProbeReq{
		{Ckpt: cps[2], Until: 40, Mark: true}, // served by the standby
		{Ckpt: cps[1], Until: 40, Mark: true}, // winner
		{Ckpt: cps[0], Until: 40},             // loser, cancelled mid-re-execute
	}
	sp.Prefetch(reqs)
	if sp.InFlight() != 3 {
		t.Fatalf("in-flight %d, want 3", sp.InFlight())
	}
	if len(src.rolled) != 2 || src.rolled[0] != cps[1] || src.rolled[1] != cps[0] {
		t.Fatalf("rollbacks %v: the standby launch must not roll the source back", src.rolled)
	}

	// A request the speculator never saw is a miss, not a hang.
	if _, ok := sp.Take(&diagnosis.ProbeReq{Ckpt: cps[0]}); ok {
		t.Fatal("Take succeeded for a request that was never prefetched")
	}

	// Consume the winner: marked on the clone goroutine, mark error
	// surfaced, evidence translated into the source table.
	pr, ok := sp.Take(reqs[1])
	if !ok {
		t.Fatal("Take missed a prefetched request")
	}
	if !winner.marked.Load() || pr.MarkErr == nil {
		t.Fatalf("marked=%v markErr=%v, want heap marking run on the clone and its error surfaced",
			winner.marked.Load(), pr.MarkErr)
	}
	got := pr.Out.Manifests.All[0].FreeSite
	if want := src.sites.Lookup(callsite.Key{"leaf", "mid", "outer"}); got != want || got == 0 {
		t.Fatalf("translated free site %v, want %v interned in the source table", got, want)
	}

	sp.CancelAll()
	if sp.InFlight() != 0 {
		t.Fatalf("in-flight %d after CancelAll, want 0", sp.InFlight())
	}
	if !standby.marked.Load() {
		t.Fatal("standby hypothesis never ran its heap marking")
	}

	st := sp.Episode()
	want := stages.SpecStats{Launched: 3, Won: 1, Cancelled: 2, StandbyHits: 1}
	if st != want {
		t.Fatalf("episode stats %+v, want %+v", st, want)
	}
	if next := sp.Episode(); next != (stages.SpecStats{}) {
		t.Fatalf("episode stats not reset: %+v", next)
	}
	if tot := sp.Totals(); tot != want {
		t.Fatalf("totals %+v, want %+v", tot, want)
	}

	for name, want := range map[string]uint64{
		"spec.launched": 3, "spec.won": 1, "spec.cancelled": 2, "spec.standby_hits": 1,
	} {
		if got := tel.Counter(name).Value(); got != want {
			t.Fatalf("counter %s = %d, want %d", name, got, want)
		}
	}
	if g := tel.Gauge("spec.active").Value(); g != 0 {
		t.Fatalf("spec.active gauge %d after CancelAll, want 0", g)
	}
}
