// Package stages turns a recovery strategy into data: an ordered plan of
// named stages over a shared recovery context, instead of control flow
// hardcoded in core.Supervisor. The contract between stages is the state
// the context carries — the failing fault, the replay-log window, the
// ledger entry collecting conditions, the span/trace handles, and the
// diagnosis session — so a strategy can reorder, skip or extend stages
// (the guard fast path, speculation, distributed validation) without the
// supervisor changing shape.
//
// The package also hosts the Speculator (speculate.go): a diagnosis.Prober
// that races prefetched re-execution hypotheses on COW machine clones and
// hands the engine their outcomes in serial program order, so speculative
// recovery is observationally identical to the serial pipeline.
package stages

import (
	"firstaid/internal/diagnosis"
	"firstaid/internal/ledger"
	"firstaid/internal/proc"
	"firstaid/internal/telemetry"
	"firstaid/internal/trace"
)

// Status is a stage verdict: continue with the next stage, or stop the
// plan (the recovery reached a terminal outcome early — non-deterministic
// screen, skip after repeated failure, disabled validation).
type Status int

const (
	// Next hands control to the following stage.
	Next Status = iota
	// Stop ends the plan; later stages never run.
	Stop
)

// Stage is one step of a recovery strategy.
type Stage interface {
	// Name identifies the stage in plans, tests and debug output.
	Name() string
	// Run executes the stage against the shared context.
	Run(c *Ctx) Status
}

// Func adapts a function to the Stage interface.
type Func struct {
	name string
	fn   func(*Ctx) Status
}

// NewFunc wraps fn as a named stage.
func NewFunc(name string, fn func(*Ctx) Status) Func {
	return Func{name: name, fn: fn}
}

// Name implements Stage.
func (f Func) Name() string { return f.name }

// Run implements Stage.
func (f Func) Run(c *Ctx) Status { return f.fn(c) }

// Plan is an ordered recovery strategy.
type Plan struct {
	Name   string
	Stages []Stage
}

// Run executes the stages in order until one returns Stop.
func (p Plan) Run(c *Ctx) {
	for _, st := range p.Stages {
		if st.Run(c) == Stop {
			return
		}
	}
}

// Names lists the plan's stage names in order.
func (p Plan) Names() []string {
	out := make([]string, len(p.Stages))
	for i, st := range p.Stages {
		out[i] = st.Name()
	}
	return out
}

// Ctx is the state shared by the stages of one recovery: the contract a
// predecessor stage leaves for its successors.
type Ctx struct {
	// Fault is the trapped failure that opened the recovery.
	Fault *proc.Fault
	// FailCursor is the replay-log cursor of the failing event; Until is
	// the diagnosis success horizon beyond it.
	FailCursor int
	Until      int

	// Entry is the recovery's ledger lifecycle entry (nil-safe: appends on
	// a nil entry are discarded).
	Entry *ledger.Entry
	// Span is the recovery's span journal entry; Trace emits on the
	// supervising worker's track.
	Span  *telemetry.Span
	Trace trace.Emitter

	// NewSession opens the diagnosis session on first use; the supervisor
	// installs it so diagnosis stages stay decoupled from engine
	// construction.
	NewSession func(*Ctx) *diagnosis.Session

	// Result is the sealed diagnosis outcome, set by the stage that calls
	// Session().Result() (the supervisor's triage stage).
	Result *diagnosis.Result

	session *diagnosis.Session
}

// Session returns the recovery's diagnosis session, opening it on first
// call.
func (c *Ctx) Session() *diagnosis.Session {
	if c.session == nil {
		c.session = c.NewSession(c)
	}
	return c.session
}

// The diagnosis stages, one per externally steerable phase of the engine.
// Each is a thin wrapper over the corresponding Session method, which
// no-ops once the session has resolved — so a plan that leads with
// EvidenceConfirm gets the guard fast path "for free", and a plan that
// omits it forces the full pipeline.
var (
	// EvidenceConfirm tries the guard-evidence fast path: one scoped
	// confirmation re-execution instead of both search phases.
	EvidenceConfirm Stage = NewFunc("evidence-confirm", func(c *Ctx) Status {
		c.Session().TryEvidence()
		return Next
	})
	// Screen opens diagnosis phase 1, prefetches the candidate ladder for
	// speculation, and screens for a non-deterministic failure.
	Screen Stage = NewFunc("screen", func(c *Ctx) Status {
		c.Session().Screen()
		return Next
	})
	// CheckpointSelect walks the phase-1 candidate ladder to the newest
	// checkpoint predating the bug-triggering point.
	CheckpointSelect Stage = NewFunc("checkpoint-select", func(c *Ctx) Status {
		c.Session().SelectCheckpoint()
		return Next
	})
	// Identify runs phase 2: bug-class probes and call-site search from
	// the selected checkpoint.
	Identify Stage = NewFunc("identify", func(c *Ctx) Status {
		c.Session().Identify()
		return Next
	})
)

// DiagnosisStages is the canonical diagnosis sub-plan, in the order
// Engine.Diagnose runs the phases.
func DiagnosisStages() []Stage {
	return []Stage{EvidenceConfirm, Screen, CheckpointSelect, Identify}
}
