package stages_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/diagnosis"
	"firstaid/internal/ledger"
	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/stages"
)

// probeStep scripts one diagnostic re-execution: the checkpoint the engine
// must have rolled back to, and the outcome the fake machine returns.
type probeStep struct {
	wantSeq int
	out     diagnosis.Outcome
}

// fakeMachine is a scripted diagnosis.Machine: a checkpoint ladder plus an
// ordered list of probe outcomes. It lets each stage be tested in
// isolation against a hand-built predecessor state, with no allocator or
// address space behind it.
type fakeMachine struct {
	t     *testing.T
	cps   []*checkpoint.Checkpoint
	sites *callsite.Table
	steps []probeStep

	rolledTo *checkpoint.Checkpoint
	step     int
	markErr  error
}

func (f *fakeMachine) Checkpoints() []*checkpoint.Checkpoint { return f.cps }
func (f *fakeMachine) Rollback(cp *checkpoint.Checkpoint)    { f.rolledTo = cp }
func (f *fakeMachine) MarkHeap() error                       { return f.markErr }
func (f *fakeMachine) SeenAllocSites() []callsite.ID         { return nil }
func (f *fakeMachine) SeenFreeSites() []callsite.ID          { return nil }
func (f *fakeMachine) SiteKey(id callsite.ID) callsite.Key   { return f.sites.Key(id) }

func (f *fakeMachine) ReExecute(cs *allocext.ChangeSet, until int) diagnosis.Outcome {
	f.t.Helper()
	if f.step >= len(f.steps) {
		f.t.Fatalf("unexpected re-execution #%d (script has %d)", f.step+1, len(f.steps))
	}
	st := f.steps[f.step]
	f.step++
	if f.rolledTo == nil || f.rolledTo.Seq != st.wantSeq {
		f.t.Fatalf("re-execution #%d from checkpoint %v, script expects seq %d", f.step, f.rolledTo, st.wantSeq)
	}
	return st.out
}

func ladder(seqs ...int) []*checkpoint.Checkpoint {
	var cps []*checkpoint.Checkpoint
	for i, s := range seqs {
		cps = append(cps, &checkpoint.Checkpoint{Seq: s, Clock: uint64(100 * (i + 1)), Cursor: 10 * (i + 1)})
	}
	return cps
}

func fault() *proc.Fault { return &proc.Fault{Kind: proc.AccessViolation} }

func manifests(ms ...allocext.Manifestation) allocext.ManifestSet {
	return allocext.ManifestSet{All: ms}
}

// newCtx wires a fake machine into a stage context the way the supervisor
// does, returning the ledger entry the diagnosis stages append to.
func newCtx(t *testing.T, f *fakeMachine, cfg diagnosis.Config) (*stages.Ctx, *ledger.Entry) {
	t.Helper()
	entry := ledger.New(8).Begin(ledger.Meta{Source: "stage-test"})
	cfg.Ledger = entry
	c := &stages.Ctx{
		Until: 40,
		NewSession: func(c *stages.Ctx) *diagnosis.Session {
			return diagnosis.New(f, cfg).Session(c.Until)
		},
	}
	return c, entry
}

func conditions(t *testing.T, entry *ledger.Entry) []ledger.Condition {
	t.Helper()
	return entry.Snapshot().Conditions
}

// TestPlanRunStopsOnStop pins the plan contract itself: stages run in
// order, a Stop verdict halts the plan, and Names reports the order.
func TestPlanRunStopsOnStop(t *testing.T) {
	var ran []string
	mk := func(name string, st stages.Status) stages.Stage {
		return stages.NewFunc(name, func(*stages.Ctx) stages.Status {
			ran = append(ran, name)
			return st
		})
	}
	p := stages.Plan{Name: "test", Stages: []stages.Stage{
		mk("a", stages.Next), mk("b", stages.Stop), mk("c", stages.Next),
	}}
	p.Run(&stages.Ctx{})
	if want := []string{"a", "b"}; !reflect.DeepEqual(ran, want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(p.Names(), want) {
		t.Fatalf("Names() = %v, want %v", p.Names(), want)
	}
}

// TestScreenNoCheckpoints: a session with an empty checkpoint ladder must
// resolve non-patchable from the screen stage alone.
func TestScreenNoCheckpoints(t *testing.T) {
	f := &fakeMachine{t: t, sites: callsite.NewTable()}
	c, entry := newCtx(t, f, diagnosis.Config{})
	stages.Screen.Run(c)
	res := c.Session().Result()
	if !res.Unpatchable {
		t.Fatalf("result %+v, want unpatchable", res)
	}
	conds := conditions(t, entry)
	if len(conds) != 1 || conds[0].Type != ledger.Phase1Completed ||
		!strings.Contains(conds[0].Message, "no checkpoints available") {
		t.Fatalf("conditions %+v, want one Phase1Completed/no-checkpoints", conds)
	}
}

// TestScreenNondeterministic: a passing plain re-execution resolves the
// session at the screen; the later diagnosis stages must no-op.
func TestScreenNondeterministic(t *testing.T) {
	f := &fakeMachine{
		t: t, sites: callsite.NewTable(), cps: ladder(0, 1),
		steps: []probeStep{{wantSeq: 1, out: diagnosis.Outcome{}}}, // plain screen passes
	}
	c, entry := newCtx(t, f, diagnosis.Config{})
	for _, st := range stages.DiagnosisStages() {
		st.Run(c)
	}
	res := c.Session().Result()
	if !res.Nondeterministic {
		t.Fatalf("result %+v, want nondeterministic", res)
	}
	if f.step != len(f.steps) {
		t.Fatalf("ran %d probes, want %d (checkpoint-select and identify must no-op)", f.step, len(f.steps))
	}
	conds := conditions(t, entry)
	if len(conds) != 1 || conds[0].Type != ledger.Phase1Completed ||
		!strings.Contains(conds[0].Message, "non-deterministic") {
		t.Fatalf("conditions %+v, want one Phase1Completed/non-deterministic", conds)
	}
}

// TestCheckpointSelectRejections walks a four-candidate ladder through
// every rejection reason the phase-1 contract defines — heap-marking
// canaries, the PR-6 underflow witness, the PR-6 MetaErr metadata check,
// and a plain still-failing probe — and asserts each lands verbatim in the
// CheckpointSelected condition's candidate evidence.
func TestCheckpointSelectRejections(t *testing.T) {
	cases := []struct {
		name       string
		out        diagnosis.Outcome
		wantReject string
	}{
		{
			name:       "heap-mark",
			out:        diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{Bug: mmbug.BufferOverflow, FromMark: true})},
			wantReject: "heap-marking canaries corrupted",
		},
		{
			name:       "underflow-witness",
			out:        diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{Bug: mmbug.BufferOverflow, Offsets: []int{-1}})},
			wantReject: "front-padding canaries corrupted",
		},
		{
			name:       "meta-err",
			out:        diagnosis.Outcome{MetaErr: errors.New("header smashed")},
			wantReject: "allocator metadata corrupted",
		},
		{
			name:       "still-failing",
			out:        diagnosis.Outcome{Fault: fault()},
			wantReject: "all-preventive re-execution still failed",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := &fakeMachine{
				t: t, sites: callsite.NewTable(), cps: ladder(0, 1),
				steps: []probeStep{
					{wantSeq: 1, out: diagnosis.Outcome{Fault: fault()}}, // screen: deterministic
					{wantSeq: 1, out: tc.out},                            // newest rejected
					{wantSeq: 0, out: diagnosis.Outcome{}},               // oldest survives
				},
			}
			c, entry := newCtx(t, f, diagnosis.Config{})
			stages.Screen.Run(c)
			stages.CheckpointSelect.Run(c)
			if cp := c.Session().Checkpoint(); cp == nil || cp.Seq != 0 {
				t.Fatalf("selected checkpoint %v, want seq 0", cp)
			}
			conds := conditions(t, entry)
			var sel *ledger.Condition
			for i := range conds {
				if conds[i].Type == ledger.CheckpointSelected {
					sel = &conds[i]
				}
			}
			if sel == nil {
				t.Fatalf("no CheckpointSelected condition: %+v", conds)
			}
			if len(sel.Candidates) != 2 {
				t.Fatalf("candidates %+v, want 2", sel.Candidates)
			}
			if !strings.Contains(sel.Candidates[0].Rejected, tc.wantReject) {
				t.Fatalf("rejection %q, want substring %q", sel.Candidates[0].Rejected, tc.wantReject)
			}
			if sel.Candidates[1].Rejected != "" {
				t.Fatalf("accepted candidate carries rejection %q", sel.Candidates[1].Rejected)
			}
		})
	}
}

// TestCheckpointSelectExhaustion: every ladder rung rejected resolves
// non-patchable with the full candidate evidence chain.
func TestCheckpointSelectExhaustion(t *testing.T) {
	f := &fakeMachine{
		t: t, sites: callsite.NewTable(), cps: ladder(0, 1),
		steps: []probeStep{
			{wantSeq: 1, out: diagnosis.Outcome{Fault: fault()}},
			{wantSeq: 1, out: diagnosis.Outcome{Fault: fault()}},
			{wantSeq: 0, out: diagnosis.Outcome{Fault: fault()}},
		},
	}
	c, entry := newCtx(t, f, diagnosis.Config{})
	stages.Screen.Run(c)
	stages.CheckpointSelect.Run(c)
	res := c.Session().Result()
	if !res.Unpatchable {
		t.Fatalf("result %+v, want unpatchable", res)
	}
	conds := conditions(t, entry)
	var done *ledger.Condition
	for i := range conds {
		if conds[i].Type == ledger.Phase1Completed {
			done = &conds[i]
		}
	}
	if done == nil || !strings.Contains(done.Message, "no surviving checkpoint") {
		t.Fatalf("conditions %+v, want Phase1Completed/no-surviving-checkpoint", conds)
	}
	if len(done.Candidates) != 2 {
		t.Fatalf("candidates %+v, want both rejections recorded", done.Candidates)
	}
}

// TestFullPipelineIdentifies drives the whole diagnosis sub-plan over a
// scripted deep ladder: screen fails deterministically, three candidates
// are rejected for three different reasons, the fourth survives, and
// phase 2 isolates a double free at its exact free site.
func TestFullPipelineIdentifies(t *testing.T) {
	sites := callsite.NewTable()
	dfSite := sites.Intern(callsite.Key{"free_leaf", "bug_mid", "outer"})
	pass := diagnosis.Outcome{}
	f := &fakeMachine{
		t: t, sites: sites, cps: ladder(0, 1, 2, 3),
		steps: []probeStep{
			{wantSeq: 3, out: diagnosis.Outcome{Fault: fault()}}, // screen
			{wantSeq: 3, out: diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{Bug: mmbug.DanglingWrite, FromMark: true})}},
			{wantSeq: 2, out: diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{Bug: mmbug.BufferOverflow, Offsets: []int{-2}})}},
			{wantSeq: 1, out: diagnosis.Outcome{MetaErr: errors.New("smashed header")}},
			{wantSeq: 0, out: pass}, // selected
			// Phase 2 from checkpoint 0, classes in mmbug order.
			{wantSeq: 0, out: pass}, // overflow: ruled out
			{wantSeq: 0, out: pass}, // dangling write: ruled out
			{wantSeq: 0, out: pass}, // dangling read: ruled out
			{wantSeq: 0, out: diagnosis.Outcome{Manifests: manifests(allocext.Manifestation{Bug: mmbug.DoubleFree, FreeSite: dfSite})}},
			{wantSeq: 0, out: pass}, // convergence over {uninit read}
			{wantSeq: 0, out: pass}, // final scoped verification
		},
	}
	c, _ := newCtx(t, f, diagnosis.Config{})
	for _, st := range stages.DiagnosisStages() {
		st.Run(c)
	}
	res := c.Session().Result()
	if !res.OK() {
		t.Fatalf("result %+v, want OK", res)
	}
	if res.Checkpoint.Seq != 0 {
		t.Fatalf("checkpoint seq %d, want 0", res.Checkpoint.Seq)
	}
	want := []diagnosis.Finding{{Bug: mmbug.DoubleFree, Sites: []callsite.ID{dfSite}}}
	if !reflect.DeepEqual(res.Findings, want) {
		t.Fatalf("findings %+v, want %+v", res.Findings, want)
	}
	if res.Rollbacks != len(f.steps) {
		t.Fatalf("rollbacks %d, want %d", res.Rollbacks, len(f.steps))
	}
	if f.step != len(f.steps) {
		t.Fatalf("script consumed %d/%d steps", f.step, len(f.steps))
	}
}

// TestFastPathPlanEquivalence expresses the guard fast path as data: a
// plan reduced to the single EvidenceConfirm stage must produce exactly
// the result and ledger conditions of the full diagnosis plan, whose later
// stages no-op once the evidence confirms — the hardcoded skip and the
// skipped plan are the same diagnoser.
func TestFastPathPlanEquivalence(t *testing.T) {
	run := func(t *testing.T, plan []stages.Stage) (diagnosis.Result, []ledger.Condition) {
		sites := callsite.NewTable()
		site := sites.Intern(callsite.Key{"alloc_leaf", "bug_mid", "outer"})
		f := &fakeMachine{
			t: t, sites: sites, cps: ladder(0, 1),
			// One scoped confirmation re-execution from the newest
			// checkpoint predating the evidence clock (clock 150 → seq 0).
			steps: []probeStep{{wantSeq: 0, out: diagnosis.Outcome{}}},
		}
		cfg := diagnosis.Config{
			Evidence: &diagnosis.Evidence{Bug: mmbug.BufferOverflow, Site: site, Clock: 150},
		}
		c, entry := newCtx(t, f, cfg)
		for _, st := range plan {
			st.Run(c)
		}
		res := c.Session().Result()
		if f.step != len(f.steps) {
			t.Fatalf("script consumed %d/%d steps", f.step, len(f.steps))
		}
		return res, conditions(t, entry)
	}

	fullRes, fullConds := run(t, stages.DiagnosisStages())
	skipRes, skipConds := run(t, []stages.Stage{stages.EvidenceConfirm})

	if !fullRes.FastPath || !fullRes.OK() {
		t.Fatalf("full plan result %+v, want fast-path OK", fullRes)
	}
	// Site IDs were interned into distinct tables; compare structurally.
	if !reflect.DeepEqual(fullRes, skipRes) {
		t.Fatalf("results diverge:\nfull: %+v\nskip: %+v", fullRes, skipRes)
	}
	// Wall-clock stamps are the one legitimately run-dependent field.
	for i := range fullConds {
		fullConds[i].WallNS = 0
	}
	for i := range skipConds {
		skipConds[i].WallNS = 0
	}
	if !reflect.DeepEqual(fullConds, skipConds) {
		t.Fatalf("ledger conditions diverge:\nfull: %+v\nskip: %+v", fullConds, skipConds)
	}
	wantTypes := []ledger.ConditionType{ledger.Phase1Skipped, ledger.CheckpointSelected}
	var gotTypes []ledger.ConditionType
	for _, cond := range fullConds {
		gotTypes = append(gotTypes, cond.Type)
	}
	if !reflect.DeepEqual(gotTypes, wantTypes) {
		t.Fatalf("condition types %v, want %v", gotTypes, wantTypes)
	}
}

// TestTruncatedPlanUnpatchable: a plan that ends before any stage resolves
// the session must seal a non-patchable result rather than panic or hang.
func TestTruncatedPlanUnpatchable(t *testing.T) {
	f := &fakeMachine{
		t: t, sites: callsite.NewTable(), cps: ladder(0, 1),
		steps: []probeStep{{wantSeq: 1, out: diagnosis.Outcome{Fault: fault()}}},
	}
	c, _ := newCtx(t, f, diagnosis.Config{})
	stages.Screen.Run(c) // deterministic bug, but no checkpoint-select follows
	res := c.Session().Result()
	if !res.Unpatchable {
		t.Fatalf("result %+v, want unpatchable", res)
	}
	found := false
	for _, line := range res.Log {
		if strings.Contains(line, "plan ended without resolving") {
			found = true
		}
	}
	if !found {
		t.Fatalf("log %v, want plan-ended note", res.Log)
	}
}
