// The event journal: one structured span per supervision-pipeline episode.
//
// Where the metrics registry answers "how much", the journal answers "what
// happened": each failure produces a span that records the pipeline phases
// it went through — diagnosis (phase-1 checkpoint search, phase-2 bug/site
// identification), patch generation, rollback, validation — with wall-clock
// timing, per-phase work counts and a terminal outcome. The spans are the
// per-recovery trace dumped by `firstaid-run --metrics`.

package telemetry

import (
	"sync"
	"time"
)

// DefaultSpanCap bounds how many spans a journal retains by default. A
// long-lived service under a pathological workload can go through
// thousands of recoveries; the journal is a diagnostic ring, not a log —
// old spans roll off and are counted in Dropped.
const DefaultSpanCap = 512

// Journal is a bounded ring of spans, newest retained. The zero value is
// ready to use (DefaultSpanCap); a nil *Journal discards everything.
type Journal struct {
	mu      sync.Mutex
	nextID  int
	cap     int // 0 means DefaultSpanCap
	spans   []*Span
	dropped uint64
}

// SetCap changes the number of spans retained (<= 0 restores the
// default), evicting the oldest spans immediately if over the new cap.
func (j *Journal) SetCap(n int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n <= 0 {
		n = DefaultSpanCap
	}
	j.cap = n
	j.evictLocked()
}

func (j *Journal) capLocked() int {
	if j.cap <= 0 {
		return DefaultSpanCap
	}
	return j.cap
}

func (j *Journal) evictLocked() {
	c := j.capLocked()
	if over := len(j.spans) - c; over > 0 {
		j.dropped += uint64(over)
		// Shift-copy into the same backing array so the slice does not
		// grow without bound as spans roll off.
		copy(j.spans, j.spans[over:])
		for i := c; i < len(j.spans); i++ {
			j.spans[i] = nil
		}
		j.spans = j.spans[:c]
	}
}

// Dropped returns the number of spans evicted by the cap so far.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// Begin opens a new span of the given kind (e.g. "recovery") anchored at a
// replay event sequence number. Returns nil on a nil journal.
func (j *Journal) Begin(kind string, event int) *Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	sp := &Span{id: j.nextID, kind: kind, event: event, start: time.Now()}
	j.nextID++
	j.spans = append(j.spans, sp)
	j.evictLocked()
	return sp
}

// Len returns the number of spans recorded so far.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.spans)
}

// Snapshot returns a copy of every span's current state.
func (j *Journal) Snapshot() []SpanSnapshot {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	spans := append([]*Span(nil), j.spans...)
	j.mu.Unlock()
	out := make([]SpanSnapshot, len(spans))
	for i, sp := range spans {
		out[i] = sp.snapshot()
	}
	return out
}

// Span is one pipeline episode in flight or completed.
type Span struct {
	mu      sync.Mutex
	id      int
	kind    string
	event   int
	start   time.Time
	phases  []Phase
	outcome string
	wall    time.Duration
	done    bool
}

// Phase is one step of a span.
type Phase struct {
	Name    string        `json:"name"`
	Wall    time.Duration `json:"wallNs"`
	Outcome string        `json:"outcome,omitempty"`
	// N counts the phase's units of work (rollbacks for diagnosis phases,
	// patches for generation, iterations for validation).
	N int `json:"n,omitempty"`
}

// AddPhase records an externally-timed phase.
func (sp *Span) AddPhase(name string, wall time.Duration, outcome string, n int) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.phases = append(sp.phases, Phase{Name: name, Wall: wall, Outcome: outcome, N: n})
}

// Phase starts an internally-timed phase; the returned func closes it with
// an outcome and a work count. On a nil span the returned func is a no-op.
func (sp *Span) Phase(name string) func(outcome string, n int) {
	if sp == nil {
		return func(string, int) {}
	}
	t0 := time.Now()
	return func(outcome string, n int) {
		sp.AddPhase(name, time.Since(t0), outcome, n)
	}
}

// End closes the span with its terminal outcome ("recovered", "skipped",
// "nondeterministic", …). Ending twice keeps the first outcome and wall.
func (sp *Span) End(outcome string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.done {
		return
	}
	sp.done = true
	sp.outcome = outcome
	sp.wall = time.Since(sp.start)
}

// Done reports whether the span has ended.
func (sp *Span) Done() bool {
	if sp == nil {
		return false
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.done
}

// Outcome returns the terminal outcome ("" while in flight or on nil).
func (sp *Span) Outcome() string {
	if sp == nil {
		return ""
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return sp.outcome
}

// SpanSnapshot is the JSON view of one span.
type SpanSnapshot struct {
	ID      int           `json:"id"`
	Kind    string        `json:"kind"`
	Event   int           `json:"event"`
	Outcome string        `json:"outcome,omitempty"`
	Wall    time.Duration `json:"wallNs,omitempty"`
	Done    bool          `json:"done"`
	Phases  []Phase       `json:"phases,omitempty"`
}

func (sp *Span) snapshot() SpanSnapshot {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return SpanSnapshot{
		ID:      sp.id,
		Kind:    sp.kind,
		Event:   sp.event,
		Outcome: sp.outcome,
		Wall:    sp.wall,
		Done:    sp.done,
		Phases:  append([]Phase(nil), sp.phases...),
	}
}
