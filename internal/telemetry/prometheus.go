// Prometheus text exposition (version 0.0.4) for snapshots: the format
// every mainstream scraper speaks, emitted straight from a Snapshot so the
// fleet's /metrics endpoint can serve either JSON (dashboards, tests) or
// prom text (scrapers) from the same data.
//
// Instrument names are mapped to the prometheus grammar: dots become
// underscores and everything gets a "firstaid_" prefix, so "ckpt.taken"
// exposes as "firstaid_ckpt_taken". Power-of-two histogram buckets become
// cumulative le-labelled buckets with their inclusive upper bounds as the
// thresholds.

package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"
)

// processStart anchors firstaid_uptime_seconds; set once at init so every
// exposition from this process agrees.
var processStart = time.Now()

// buildVersion resolves the module version stamped into the binary, or
// "dev" for unstamped builds (go test, plain go build of a dirty tree).
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// writeBuildInfo emits the standard process-identity series: a build_info
// gauge carrying version labels (value always 1, the prometheus idiom for
// label-only metrics) and the process uptime.
func writeBuildInfo(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"# TYPE firstaid_build_info gauge\nfirstaid_build_info{version=%q,goversion=%q} 1\n"+
			"# TYPE firstaid_uptime_seconds gauge\nfirstaid_uptime_seconds %g\n",
		buildVersion(), runtime.Version(), time.Since(processStart).Seconds())
	return err
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, prefixed with the process-identity series (build info, uptime).
// Spans are omitted — they are structured episodes, not scrapeable
// series; scrape the counters/histograms and read spans from /metrics JSON.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	if err := writeBuildInfo(w); err != nil {
		return err
	}
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, snap.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := writePromHistogram(w, promName(name), snap.Histograms[name]); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, pn string, hs HistogramSnapshot) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
		return err
	}
	// The snapshot keeps sparse buckets keyed by their decimal upper
	// bound; prometheus wants every bucket cumulative and ordered by le.
	type bound struct {
		le string
		v  uint64
		n  uint64
	}
	bounds := make([]bound, 0, len(hs.Buckets))
	for le, n := range hs.Buckets {
		v, err := strconv.ParseUint(le, 10, 64)
		if err != nil {
			continue // not a decimal label; skip rather than mis-order
		}
		bounds = append(bounds, bound{le: le, v: v, n: n})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].v < bounds[j].v })
	var cum uint64
	for _, b := range bounds {
		cum += b.n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn, b.le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		pn, hs.Count, pn, hs.Sum, pn, hs.Count)
	return err
}

// promName maps an instrument name onto the prometheus metric grammar
// ([a-zA-Z_:][a-zA-Z0-9_:]*) with the firstaid_ namespace prefix.
func promName(name string) string {
	out := make([]byte, 0, len(name)+9)
	out = append(out, "firstaid_"...)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
