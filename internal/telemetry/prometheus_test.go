package telemetry

import (
	"bytes"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestJournalCapEvictsOldest(t *testing.T) {
	r := NewRegistry()
	j := r.Journal()
	j.SetCap(4)
	for i := 0; i < 10; i++ {
		j.Begin("recovery", i).End("recovered")
	}
	if got := j.Len(); got != 4 {
		t.Fatalf("journal retains %d spans, want 4", got)
	}
	if got := j.Dropped(); got != 6 {
		t.Fatalf("Dropped() = %d, want 6", got)
	}
	spans := j.Snapshot()
	for i, sp := range spans {
		if want := 6 + i; sp.Event != want {
			t.Fatalf("span %d anchored at event %d, want %d (newest retained)", i, sp.Event, want)
		}
	}

	// The snapshot surfaces the eviction as a counter.
	snap := r.Snapshot()
	if got := snap.Counters["journal.spans_dropped"]; got != 6 {
		t.Fatalf("journal.spans_dropped = %d, want 6", got)
	}

	// Shrinking the cap evicts immediately.
	j.SetCap(2)
	if j.Len() != 2 || j.Dropped() != 8 {
		t.Fatalf("after SetCap(2): len=%d dropped=%d, want 2/8", j.Len(), j.Dropped())
	}

	// SetCap(0) restores the default without evicting anything retained.
	j.SetCap(0)
	if j.Len() != 2 {
		t.Fatalf("after SetCap(0): len=%d, want 2", j.Len())
	}
}

func TestJournalDefaultCap(t *testing.T) {
	r := NewRegistry()
	j := r.Journal()
	for i := 0; i < DefaultSpanCap+5; i++ {
		j.Begin("recovery", i)
	}
	if got := j.Len(); got != DefaultSpanCap {
		t.Fatalf("journal retains %d spans, want DefaultSpanCap=%d", got, DefaultSpanCap)
	}
	if got := j.Dropped(); got != 5 {
		t.Fatalf("Dropped() = %d, want 5", got)
	}
	// No dropped spans → no counter in a fresh registry's snapshot.
	if _, ok := NewRegistry().Snapshot().Counters["journal.spans_dropped"]; ok {
		t.Fatal("spans_dropped reported with nothing dropped")
	}
}

func TestMergedSnapshotSumsDropped(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Journal().SetCap(1)
	b.Journal().SetCap(1)
	for i := 0; i < 3; i++ {
		a.Journal().Begin("recovery", i)
		b.Journal().Begin("recovery", i)
	}
	snap := MergedSnapshot(a, b)
	if got := snap.Counters["journal.spans_dropped"]; got != 4 {
		t.Fatalf("merged spans_dropped = %d, want 4", got)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("merged spans = %d, want 2", len(snap.Spans))
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("heap.mallocs").Add(42)
	r.Gauge("fleet.queue").Set(-3)
	h := r.Histogram("ckpt.dirty_pages")
	for _, v := range []uint64{1, 2, 3, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE firstaid_heap_mallocs counter\nfirstaid_heap_mallocs 42\n",
		"# TYPE firstaid_fleet_queue gauge\nfirstaid_fleet_queue -3\n",
		"# TYPE firstaid_ckpt_dirty_pages histogram\n",
		"firstaid_ckpt_dirty_pages_bucket{le=\"+Inf\"} 4\n",
		"firstaid_ckpt_dirty_pages_sum 106\n",
		"firstaid_ckpt_dirty_pages_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Buckets must be cumulative and ordered by their numeric bound.
	lastLE := int64(-1)
	var lastCum uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "firstaid_ckpt_dirty_pages_bucket{le=\"") ||
			strings.Contains(line, `le="+Inf"`) {
			continue
		}
		rest := strings.TrimPrefix(line, "firstaid_ckpt_dirty_pages_bucket{le=\"")
		q := strings.Index(rest, `"`)
		le, err := strconv.ParseInt(rest[:q], 10, 64)
		if err != nil {
			t.Fatalf("unparseable le in %q: %v", line, err)
		}
		cum, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable count in %q: %v", line, err)
		}
		if le <= lastLE {
			t.Fatalf("buckets out of order at %q", line)
		}
		if cum < lastCum {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		lastLE, lastCum = le, cum
	}
	if lastLE < 0 {
		t.Fatal("no finite histogram buckets in the exposition")
	}
}

func TestPrometheusBuildInfoAndUptime(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE firstaid_build_info gauge\n",
		`firstaid_build_info{version="`,
		`goversion="` + runtime.Version() + `"} 1`,
		"# TYPE firstaid_uptime_seconds gauge\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// The identity series lead the exposition so scrapers always see them,
	// even on an empty snapshot.
	if !strings.HasPrefix(out, "# TYPE firstaid_build_info gauge\n") {
		t.Errorf("build_info not first:\n%s", out)
	}

	// uptime must be a parseable non-negative float that advances.
	var uptime float64
	for _, line := range strings.Split(out, "\n") {
		if v, ok := strings.CutPrefix(line, "firstaid_uptime_seconds "); ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				t.Fatalf("unparseable uptime %q: %v", line, err)
			}
			uptime = f
		}
	}
	if uptime < 0 {
		t.Fatalf("uptime = %g, want >= 0", uptime)
	}
	time.Sleep(2 * time.Millisecond)
	buf.Reset()
	if err := WritePrometheus(&buf, NewRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var later float64
	for _, line := range strings.Split(buf.String(), "\n") {
		if v, ok := strings.CutPrefix(line, "firstaid_uptime_seconds "); ok {
			later, _ = strconv.ParseFloat(v, 64)
		}
	}
	if later <= uptime {
		t.Fatalf("uptime did not advance: %g then %g", uptime, later)
	}
}
