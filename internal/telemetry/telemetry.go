// Package telemetry is the observability layer of the First-Aid runtime: a
// lightweight, allocation-free metrics registry (counters, gauges,
// histograms) plus a structured event journal of the supervision pipeline
// (one span per failure → rollback → diagnosis → patch → validation cycle).
//
// Production memory-bug tooling lives or dies by cheap always-on telemetry:
// an operator deciding whether to keep First-Aid enabled needs checkpoint
// cost, rollback counts and patch hits, not just end-of-run statistics.
// The design rules, in order:
//
//   - Hot-path cost is one atomic add. Instruments are resolved by name
//     once, at wiring time; the per-operation path never touches a map,
//     a lock, or the allocator.
//   - A nil *Registry is the "off" switch. Every method on a nil registry,
//     counter, gauge, histogram, journal or span is a safe no-op, so
//     instrumented code carries no conditionals — it simply calls through
//     whatever pointers it was wired with.
//   - Everything is safe under the supervisor's parallel-validation
//     goroutines: instruments are atomics, registries merge cloned-machine
//     results into the parent with Merge, and snapshots may be taken while
//     a run is in flight.
package telemetry

import (
	"encoding/json"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is ready to
// use; a nil Counter discards all updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 level (queue depth, current interval).
// The zero value is ready to use; a nil Gauge discards all updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts values v with bits.Len64(v) == i, i.e. bucket 0 holds v==0 and
// bucket i>0 holds 2^(i-1) <= v < 2^i.
const histBuckets = 65

// Histogram accumulates a distribution in power-of-two buckets — coarse,
// but allocation-free and mergeable, which is what the hot path needs.
// The zero value is ready to use; a nil Histogram discards all updates.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) from the
// power-of-two buckets: the top of the bucket in which the quantile falls.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++ // ceiling: the observation at or above the quantile point
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return h.max.Load()
}

// merge folds src's observations into h.
func (h *Histogram) merge(src *Histogram) {
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	for {
		m, old := src.max.Load(), h.max.Load()
		if m <= old || h.max.CompareAndSwap(old, m) {
			break
		}
	}
	for i := range h.buckets {
		h.buckets[i].Add(src.buckets[i].Load())
	}
}

// HistogramSnapshot is the JSON view of one histogram. Buckets maps the
// inclusive upper bound of each non-empty power-of-two bucket to its count.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Max     uint64            `json:"max"`
	Mean    float64           `json:"mean"`
	P50     uint64            `json:"p50"`
	P99     uint64            `json:"p99"`
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// Registry names and owns a process's instruments. Lookup methods intern by
// name (get-or-create) and are meant for wiring time, not the hot path. A
// nil *Registry is a valid disabled registry: lookups return nil instruments
// whose methods are no-ops.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	journal    Journal
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Journal returns the registry's event journal (nil on a nil registry).
func (r *Registry) Journal() *Journal {
	if r == nil {
		return nil
	}
	return &r.journal
}

// Merge folds src's counters and histograms into r, adding counts
// bucket-wise. The supervisor calls this when collecting a parallel
// validation: the cloned machine carries its own registry so the validation
// goroutine never contends with the main loop, and its work is accounted to
// the parent here. Gauges are instantaneous levels owned by the live
// machine and are not merged; spans are created only by the supervisor, so
// clone journals are always empty. Merging a nil src (or into a nil r) is a
// no-op.
func (r *Registry) Merge(src *Registry) {
	if r == nil || src == nil {
		return
	}
	// Snapshot src's instrument maps under its lock, then update r's
	// instruments outside it (instrument updates are atomic).
	src.mu.Lock()
	counters := make(map[string]*Counter, len(src.counters))
	for name, c := range src.counters {
		counters[name] = c
	}
	histograms := make(map[string]*Histogram, len(src.histograms))
	for name, h := range src.histograms {
		histograms[name] = h
	}
	src.mu.Unlock()

	for name, c := range counters {
		r.Counter(name).Add(c.Value())
	}
	for name, h := range histograms {
		r.Histogram(name).merge(h)
	}
}

// MergedSnapshot folds several registries into one snapshot: counters and
// histograms add, gauges are dropped (instantaneous levels owned by their
// machine), and the journals' spans concatenate in registry order. Nil
// registries are skipped. This is the fleet-level view: one registry per
// worker plus the fleet's own, rendered as a single set of instruments.
func MergedSnapshot(regs ...*Registry) Snapshot {
	m := NewRegistry()
	var spans []SpanSnapshot
	var dropped uint64
	for _, r := range regs {
		if r == nil {
			continue
		}
		m.Merge(r)
		spans = append(spans, r.journal.Snapshot()...)
		dropped += r.journal.Dropped()
	}
	snap := m.Snapshot()
	snap.Spans = spans
	if dropped > 0 {
		snap.Counters["journal.spans_dropped"] = dropped
	}
	return snap
}

// Snapshot is the JSON view of a registry: every instrument by name, plus
// the recovery spans recorded so far.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state. It is safe to call while
// instruments are being updated; counters are read atomically (the snapshot
// is per-instrument consistent, not globally instantaneous). A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	if d := r.journal.Dropped(); d > 0 {
		snap.Counters["journal.spans_dropped"] = d
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range histograms {
		hs := HistogramSnapshot{
			Count:   h.Count(),
			Sum:     h.Sum(),
			Max:     h.Max(),
			Mean:    h.Mean(),
			P50:     h.Quantile(0.50),
			P99:     h.Quantile(0.99),
			Buckets: map[string]uint64{},
		}
		for i := 0; i < histBuckets; i++ {
			if n := h.buckets[i].Load(); n > 0 {
				hs.Buckets[bucketLabel(i)] = n
			}
		}
		snap.Histograms[name] = hs
	}
	snap.Spans = r.journal.Snapshot()
	return snap
}

// bucketLabel renders the inclusive upper bound of bucket i.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return formatUint(1<<uint(i) - 1)
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}

// MarshalJSON renders the snapshot with deterministic key order (Go's JSON
// encoder already sorts map keys; this is just the default marshalling of
// the struct, defined explicitly so the format is a documented contract).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
