package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsSafeNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(5)
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(42)
	r.Journal().Begin("recovery", 1).AddPhase("p", time.Second, "ok", 1)
	sp := r.Journal().Begin("recovery", 2)
	sp.Phase("q")("done", 3)
	sp.End("recovered")
	if sp.Done() || sp.Outcome() != "" {
		t.Fatal("nil span reported state")
	}
	r.Merge(NewRegistry())
	NewRegistry().Merge(r)
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if r.CounterNames() != nil {
		t.Fatal("nil CounterNames not nil")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("heap.mallocs")
	c.Inc()
	c.Add(9)
	if got := r.Counter("heap.mallocs").Value(); got != 10 {
		t.Fatalf("counter = %d, want 10", got)
	}
	g := r.Gauge("queue")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	// Same name resolves to the same instrument.
	if r.Counter("heap.mallocs") != c {
		t.Fatal("counter not interned")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000, 1000, 1 << 20} {
		h.Observe(v)
	}
	if h.Count() != 8 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() != 1<<20 {
		t.Fatalf("max = %d", h.Max())
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 100 + 1000 + 1000 + 1<<20)
	if h.Sum() != wantSum {
		t.Fatalf("sum = %d, want %d", h.Sum(), wantSum)
	}
	if p50 := h.Quantile(0.5); p50 < 3 || p50 > 127 {
		t.Fatalf("p50 = %d out of plausible band", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 1<<20 && p99 != 1<<21-1 {
		t.Fatalf("p99 = %d", p99)
	}
	if h.Quantile(1.0) < 1000 {
		t.Fatalf("p100 = %d", h.Quantile(1.0))
	}
	if mean := h.Mean(); mean <= 0 {
		t.Fatalf("mean = %f", mean)
	}
}

func TestMergeAggregatesCloneIntoParent(t *testing.T) {
	parent := NewRegistry()
	parent.Counter("diag.rollbacks").Add(3)
	parent.Histogram("ckpt.dirty").Observe(10)
	parent.Gauge("queue").Set(7)

	clone := NewRegistry()
	clone.Counter("diag.rollbacks").Add(4)
	clone.Counter("heap.mallocs").Add(100)
	clone.Histogram("ckpt.dirty").Observe(20)
	clone.Gauge("queue").Set(99)

	parent.Merge(clone)
	if got := parent.Counter("diag.rollbacks").Value(); got != 7 {
		t.Fatalf("merged counter = %d, want 7", got)
	}
	if got := parent.Counter("heap.mallocs").Value(); got != 100 {
		t.Fatalf("new counter = %d, want 100", got)
	}
	h := parent.Histogram("ckpt.dirty")
	if h.Count() != 2 || h.Sum() != 30 || h.Max() != 20 {
		t.Fatalf("merged histogram count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
	// Gauges are instantaneous levels: not merged.
	if got := parent.Gauge("queue").Value(); got != 7 {
		t.Fatalf("gauge merged: %d", got)
	}
}

func TestConcurrentUpdatesAndSnapshots(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c")
			h := r.Histogram("h")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i))
				r.Gauge("g").Set(int64(i))
			}
		}()
	}
	// Concurrent merges and snapshots must not race or corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			src := NewRegistry()
			src.Counter("m").Inc()
			r.Merge(src)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("m").Value(); got != 100 {
		t.Fatalf("merged counter = %d, want 100", got)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d", got)
	}
}

func TestJournalSpanLifecycle(t *testing.T) {
	r := NewRegistry()
	j := r.Journal()
	sp := j.Begin("recovery", 439)
	done := sp.Phase("phase1")
	done("checkpoint found", 5)
	sp.AddPhase("patch-gen", 3*time.Millisecond, "", 7)
	if sp.Done() {
		t.Fatal("span done before End")
	}
	sp.End("recovered")
	sp.End("overwritten") // second End must not overwrite
	if !sp.Done() || sp.Outcome() != "recovered" {
		t.Fatalf("outcome = %q", sp.Outcome())
	}

	spans := j.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %d", len(spans))
	}
	s := spans[0]
	if s.Kind != "recovery" || s.Event != 439 || !s.Done || s.Outcome != "recovered" {
		t.Fatalf("span snapshot = %+v", s)
	}
	if len(s.Phases) != 2 || s.Phases[0].Name != "phase1" || s.Phases[0].N != 5 {
		t.Fatalf("phases = %+v", s.Phases)
	}
	if s.Phases[1].Wall != 3*time.Millisecond || s.Phases[1].N != 7 {
		t.Fatalf("phase 2 = %+v", s.Phases[1])
	}
	if j.Len() != 1 {
		t.Fatalf("journal len = %d", j.Len())
	}
}

func TestSnapshotJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.failures").Inc()
	r.Gauge("core.pending_validations").Set(2)
	r.Histogram("ckpt.dirty_pages_per_ckpt").Observe(33)
	sp := r.Journal().Begin("recovery", 10)
	sp.AddPhase("validation", time.Millisecond, "consistent", 3)
	sp.End("recovered")

	raw, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, raw)
	}
	if back.Counters["core.failures"] != 1 {
		t.Fatalf("counters = %+v", back.Counters)
	}
	if back.Gauges["core.pending_validations"] != 2 {
		t.Fatalf("gauges = %+v", back.Gauges)
	}
	if back.Histograms["ckpt.dirty_pages_per_ckpt"].Count != 1 {
		t.Fatalf("histograms = %+v", back.Histograms)
	}
	if len(back.Spans) != 1 || back.Spans[0].Outcome != "recovered" {
		t.Fatalf("spans = %+v", back.Spans)
	}
}

func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("z")
	r.Counter("a")
	r.Counter("m")
	names := r.CounterNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestBucketLabel(t *testing.T) {
	if bucketLabel(0) != "0" {
		t.Fatal(bucketLabel(0))
	}
	if bucketLabel(1) != "1" {
		t.Fatal(bucketLabel(1))
	}
	if bucketLabel(4) != "15" {
		t.Fatal(bucketLabel(4))
	}
}

func TestMergedSnapshotAcrossRegistries(t *testing.T) {
	// Three registries model a fleet: the fleet-level registry plus one
	// per worker. MergedSnapshot must sum counters and histograms, carry
	// every journal's spans, skip nils, and leave the inputs untouched.
	front := NewRegistry()
	front.Counter("fleet.submitted").Add(10)
	front.Journal().Begin("recovery", 3).End("recovered")

	w0 := NewRegistry()
	w0.Counter("heap.mallocs").Add(100)
	w0.Histogram("ckpt.dirty").Observe(8)

	w1 := NewRegistry()
	w1.Counter("heap.mallocs").Add(50)
	w1.Histogram("ckpt.dirty").Observe(24)
	w1.Gauge("queue").Set(5)

	snap := MergedSnapshot(front, nil, w0, w1)
	if got := snap.Counters["fleet.submitted"]; got != 10 {
		t.Fatalf("fleet counter = %d, want 10", got)
	}
	if got := snap.Counters["heap.mallocs"]; got != 150 {
		t.Fatalf("summed counter = %d, want 150", got)
	}
	h, ok := snap.Histograms["ckpt.dirty"]
	if !ok || h.Count != 2 || h.Sum != 32 || h.Max != 24 {
		t.Fatalf("merged histogram = %+v (ok=%v)", h, ok)
	}
	if len(snap.Spans) != 1 || snap.Spans[0].Kind != "recovery" {
		t.Fatalf("spans = %+v, want the one recovery span", snap.Spans)
	}
	// Gauges are instantaneous levels of one registry — dropped.
	if _, ok := snap.Gauges["queue"]; ok {
		t.Fatal("gauge leaked into merged snapshot")
	}
	// Merging reads, never writes.
	if w0.Counter("heap.mallocs").Value() != 100 {
		t.Fatal("MergedSnapshot mutated a source registry")
	}
}
