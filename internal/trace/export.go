// Exporters: Chrome trace-event JSON (chrome://tracing, Perfetto), the
// human-readable text timeline, and the summarizer behind
// `firstaid-trace summarize`.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is a metadata event (thread naming); it carries no timestamp.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromePid is the single process all tracks render under; tracks are
// threads named after their worker (or validation clone).
const chromePid = 1

// ChromeTrace renders recs as a Chrome trace-event JSON array: one thread
// track per worker, pipeline phases as nested B/E duration events, point
// records as instant events. Timestamps are microseconds of wall time
// relative to the earliest record, clamped non-decreasing per track (wall
// stamps are taken outside the ring lock, so cross-shard jitter of a few
// nanoseconds is possible; the timeline view requires monotonic ts).
func ChromeTrace(w io.Writer, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	var t0 int64
	if len(sorted) > 0 {
		t0 = sorted[0].WallNS
		for _, r := range sorted {
			if r.WallNS < t0 {
				t0 = r.WallNS
			}
		}
	}

	var out []any
	tracks := map[uint16]bool{}
	lastTS := map[uint16]float64{}
	// Per-track stack of open B events, for self-healing: an E without a
	// B is dropped, a B left open at the end is closed at the track's
	// last timestamp so the array always balances.
	open := map[uint16][]string{}

	ts := func(r Record) float64 {
		t := float64(r.WallNS-t0) / 1e3
		if last, ok := lastTS[r.Worker]; ok && t < last {
			t = last
		}
		lastTS[r.Worker] = t
		return t
	}
	track := func(wk uint16) int { return int(wk) }

	for _, r := range sorted {
		if !tracks[r.Worker] {
			tracks[r.Worker] = true
			out = append(out, chromeMeta{
				Name: "thread_name", Ph: "M", Pid: chromePid, Tid: track(r.Worker),
				Args: map[string]any{"name": TrackName(r.Worker)},
			})
		}
		switch r.Kind {
		case KPhaseBegin:
			name := PhaseName(r.Arg1)
			open[r.Worker] = append(open[r.Worker], name)
			out = append(out, chromeEvent{
				Name: name, Ph: "B", TS: ts(r), Pid: chromePid, Tid: track(r.Worker),
				Args: map[string]any{"cycles": r.Cycles, "anchor": r.Arg2},
			})
		case KPhaseEnd:
			name := PhaseName(r.Arg1)
			st := open[r.Worker]
			if len(st) == 0 {
				continue // E without a B (begin rotated out of the ring)
			}
			open[r.Worker] = st[:len(st)-1]
			out = append(out, chromeEvent{
				Name: name, Ph: "E", TS: ts(r), Pid: chromePid, Tid: track(r.Worker),
				Args: map[string]any{"cycles": r.Cycles, "n": r.Arg2},
			})
		case KEventBegin:
			open[r.Worker] = append(open[r.Worker], "event")
			out = append(out, chromeEvent{
				Name: "event", Ph: "B", TS: ts(r), Pid: chromePid, Tid: track(r.Worker),
				Args: map[string]any{"seq": r.Arg1, "cycles": r.Cycles},
			})
		case KEventEnd:
			st := open[r.Worker]
			if len(st) == 0 {
				continue
			}
			open[r.Worker] = st[:len(st)-1]
			out = append(out, chromeEvent{
				Name: "event", Ph: "E", TS: ts(r), Pid: chromePid, Tid: track(r.Worker),
				Args: map[string]any{"seq": r.Arg1, "outcome": r.Arg2, "cycles": r.Cycles},
			})
		default:
			out = append(out, chromeEvent{
				Name: r.Kind.String(), Ph: "i", TS: ts(r), Pid: chromePid, Tid: track(r.Worker), S: "t",
				Args: map[string]any{"arg1": r.Arg1, "arg2": r.Arg2, "cycles": r.Cycles},
			})
		}
	}

	// Close any B left open (an in-flight phase at dump time).
	workers := make([]int, 0, len(open))
	for wk := range open {
		workers = append(workers, int(wk))
	}
	sort.Ints(workers)
	for _, wki := range workers {
		wk := uint16(wki)
		st := open[wk]
		for i := len(st) - 1; i >= 0; i-- {
			out = append(out, chromeEvent{
				Name: st[i], Ph: "E", TS: lastTS[wk], Pid: chromePid, Tid: track(wk),
				Args: map[string]any{"openAtDump": true},
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ValidateChrome structurally checks a Chrome trace-event JSON export: a
// well-formed JSON array whose timestamps are monotonic per track and
// whose B/E duration events balance (every B matched by an E, every X
// carrying a duration). Shared by the exporter's unit test and the
// fleet /trace end-to-end test.
func ValidateChrome(data []byte) error {
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		return fmt.Errorf("not a JSON array of events: %w", err)
	}
	type trackKey struct{ pid, tid int }
	lastTS := map[trackKey]float64{}
	depth := map[trackKey][]string{}
	for i, ev := range events {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			return fmt.Errorf("event %d: missing ph", i)
		}
		pid, _ := ev["pid"].(float64)
		tid, _ := ev["tid"].(float64)
		k := trackKey{int(pid), int(tid)}
		if ph == "M" {
			continue // metadata events carry no timestamp
		}
		ts, ok := ev["ts"].(float64)
		if !ok {
			return fmt.Errorf("event %d (%s): missing ts", i, ph)
		}
		if last, seen := lastTS[k]; seen && ts < last {
			return fmt.Errorf("event %d: ts %v < %v on track %v", i, ts, last, k)
		}
		lastTS[k] = ts
		name, _ := ev["name"].(string)
		switch ph {
		case "B":
			depth[k] = append(depth[k], name)
		case "E":
			st := depth[k]
			if len(st) == 0 {
				return fmt.Errorf("event %d: E %q without matching B on track %v", i, name, k)
			}
			if top := st[len(st)-1]; name != "" && top != name {
				return fmt.Errorf("event %d: E %q closes B %q on track %v", i, name, top, k)
			}
			depth[k] = st[:len(st)-1]
		case "X":
			if _, ok := ev["dur"].(float64); !ok {
				return fmt.Errorf("event %d: X without dur", i)
			}
		case "i", "I", "C":
			// instant/counter events need only the ts checked above
		default:
			return fmt.Errorf("event %d: unexpected ph %q", i, ph)
		}
	}
	for k, st := range depth {
		if len(st) != 0 {
			return fmt.Errorf("track %v: %d unmatched B events (%v)", k, len(st), st)
		}
	}
	return nil
}

// WriteText renders recs as a human-readable timeline, one line per
// record, in global order.
func WriteText(w io.Writer, recs []Record) error {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	var t0 int64
	if len(sorted) > 0 {
		t0 = sorted[0].WallNS
		for _, r := range sorted {
			if r.WallNS < t0 {
				t0 = r.WallNS
			}
		}
	}
	for _, r := range sorted {
		us := float64(r.WallNS-t0) / 1e3
		var detail string
		switch r.Kind {
		case KMalloc:
			detail = fmt.Sprintf("site=%d bytes=%d", r.Arg1, r.Arg2)
		case KFree:
			detail = fmt.Sprintf("site=%d bytes=%d", r.Arg1, r.Arg2)
		case KRealloc:
			detail = fmt.Sprintf("site=%d newBytes=%d", r.Arg1, r.Arg2)
		case KSbrkGrow, KMmapAlloc:
			detail = fmt.Sprintf("bytes=%d class=%d", r.Arg1, r.Arg2)
		case KPageFault:
			kind := "read"
			if r.Arg2&(1<<63) != 0 {
				kind = "write"
			}
			detail = fmt.Sprintf("addr=%#x len=%d %s", r.Arg1, r.Arg2&^(uint64(1)<<63), kind)
		case KCOWCopy:
			detail = fmt.Sprintf("page=%d", r.Arg1)
		case KSnapshot, KRestore:
			detail = fmt.Sprintf("pages=%d", r.Arg1)
		case KCkptTake:
			detail = fmt.Sprintf("ckpt=%d dirtyPages=%d", r.Arg1, r.Arg2)
		case KRollback:
			detail = fmt.Sprintf("ckpt=%d cursor=%d", r.Arg1, r.Arg2)
		case KTrap:
			detail = fmt.Sprintf("faultKind=%d addr=%#x", r.Arg1, r.Arg2)
		case KPhaseBegin:
			detail = fmt.Sprintf("%s anchor=%d", PhaseName(r.Arg1), r.Arg2)
		case KPhaseEnd:
			detail = fmt.Sprintf("%s n=%d", PhaseName(r.Arg1), r.Arg2)
		case KPatchAdd, KPatchRevoke, KPatchValidate:
			detail = fmt.Sprintf("patch=%d gen=%d", r.Arg1, r.Arg2)
		case KEventBegin:
			detail = fmt.Sprintf("seq=%d", r.Arg1)
		case KEventEnd:
			outcome := "ok"
			switch r.Arg2 {
			case OutcomeRecovered:
				outcome = "recovered"
			case OutcomeSkipped:
				outcome = "skipped"
			}
			detail = fmt.Sprintf("seq=%d outcome=%s", r.Arg1, outcome)
		default:
			detail = fmt.Sprintf("arg1=%d arg2=%d", r.Arg1, r.Arg2)
		}
		if _, err := fmt.Fprintf(w, "%8d %+12.3fµs cy=%-10d %-24s %-14s %s\n",
			r.Seq, us, r.Cycles, TrackName(r.Worker), r.Kind, detail); err != nil {
			return err
		}
	}
	return nil
}

// PhaseStat is one pipeline phase's aggregate in a Summary.
type PhaseStat struct {
	ID       uint64 `json:"id"`
	Name     string `json:"name"`
	Count    int    `json:"count"`
	Cycles   uint64 `json:"cycles"`
	WallNS   int64  `json:"wallNs"`
	Open     int    `json:"open,omitempty"` // begun but not ended at dump time
	WorkDone uint64 `json:"workDone,omitempty"`
}

// SiteStat is one allocation call-site's volume in a Summary.
type SiteStat struct {
	Site  uint64 `json:"site"`
	Count uint64 `json:"count"`
	Bytes uint64 `json:"bytes"`
}

// Summary is the aggregate view printed by `firstaid-trace summarize`.
type Summary struct {
	Records  int               `json:"records"`
	Workers  int               `json:"workers"`
	SpanNS   int64             `json:"spanNs"`
	Kinds    map[string]uint64 `json:"kinds"`
	Phases   []PhaseStat       `json:"phases"`   // by phase ID
	TopSites []SiteStat        `json:"topSites"` // by allocation bytes, descending
}

// Summarize aggregates recs: per-phase cycle and wall breakdown (B/E
// pairs matched per track), allocation volume per call-site, record
// counts per kind.
func Summarize(recs []Record) *Summary {
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	s := &Summary{Kinds: map[string]uint64{}}
	workers := map[uint16]bool{}
	phases := map[uint64]*PhaseStat{}
	sites := map[uint64]*SiteStat{}
	type openPhase struct{ r Record }
	open := map[uint16][]openPhase{} // per-track stack of phase begins

	phase := func(id uint64) *PhaseStat {
		p, ok := phases[id]
		if !ok {
			p = &PhaseStat{ID: id, Name: PhaseName(id)}
			phases[id] = p
		}
		return p
	}

	var minW, maxW int64
	for i, r := range sorted {
		s.Records++
		s.Kinds[r.Kind.String()]++
		workers[r.Worker] = true
		if i == 0 || r.WallNS < minW {
			minW = r.WallNS
		}
		if i == 0 || r.WallNS > maxW {
			maxW = r.WallNS
		}
		switch r.Kind {
		case KMalloc:
			st, ok := sites[r.Arg1]
			if !ok {
				st = &SiteStat{Site: r.Arg1}
				sites[r.Arg1] = st
			}
			st.Count++
			st.Bytes += r.Arg2
		case KPhaseBegin:
			open[r.Worker] = append(open[r.Worker], openPhase{r})
		case KPhaseEnd:
			stack := open[r.Worker]
			if len(stack) == 0 {
				continue
			}
			b := stack[len(stack)-1]
			open[r.Worker] = stack[:len(stack)-1]
			if b.r.Arg1 != r.Arg1 {
				continue // interleaving damaged by ring wraparound
			}
			p := phase(r.Arg1)
			p.Count++
			p.WorkDone += r.Arg2
			if r.Cycles >= b.r.Cycles {
				p.Cycles += r.Cycles - b.r.Cycles
			}
			if r.WallNS >= b.r.WallNS {
				p.WallNS += r.WallNS - b.r.WallNS
			}
		}
	}
	for _, stack := range open {
		for _, b := range stack {
			phase(b.r.Arg1).Open++
		}
	}
	s.Workers = len(workers)
	if s.Records > 0 {
		s.SpanNS = maxW - minW
	}
	for _, p := range phases {
		s.Phases = append(s.Phases, *p)
	}
	sort.Slice(s.Phases, func(i, j int) bool { return s.Phases[i].ID < s.Phases[j].ID })
	for _, st := range sites {
		s.TopSites = append(s.TopSites, *st)
	}
	sort.Slice(s.TopSites, func(i, j int) bool {
		if s.TopSites[i].Bytes != s.TopSites[j].Bytes {
			return s.TopSites[i].Bytes > s.TopSites[j].Bytes
		}
		return s.TopSites[i].Site < s.TopSites[j].Site
	})
	return s
}

// Format renders the summary as text, truncating the call-site table to
// topN entries (<= 0 means 10).
func (s *Summary) Format(w io.Writer, topN int) error {
	if topN <= 0 {
		topN = 10
	}
	fmt.Fprintf(w, "records: %d across %d track(s), wall span %.3f ms\n",
		s.Records, s.Workers, float64(s.SpanNS)/1e6)

	if len(s.Phases) > 0 {
		fmt.Fprintf(w, "\nper-phase breakdown (cycles are simulated time):\n")
		fmt.Fprintf(w, "  %-12s %8s %14s %14s %6s\n", "phase", "count", "cycles", "wall-ms", "open")
		for _, p := range s.Phases {
			fmt.Fprintf(w, "  %-12s %8d %14d %14.3f %6d\n",
				p.Name, p.Count, p.Cycles, float64(p.WallNS)/1e6, p.Open)
		}
	}

	if len(s.TopSites) > 0 {
		n := topN
		if n > len(s.TopSites) {
			n = len(s.TopSites)
		}
		fmt.Fprintf(w, "\ntop %d call-sites by allocation volume:\n", n)
		fmt.Fprintf(w, "  %-10s %10s %14s\n", "site", "mallocs", "bytes")
		for _, st := range s.TopSites[:n] {
			fmt.Fprintf(w, "  %-10d %10d %14d\n", st.Site, st.Count, st.Bytes)
		}
	}

	if len(s.Kinds) > 0 {
		names := make([]string, 0, len(s.Kinds))
		for k := range s.Kinds {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\nrecords by kind:\n")
		for _, k := range names {
			fmt.Fprintf(w, "  %-16s %10d\n", k, s.Kinds[k])
		}
	}
	return nil
}

// RecordJSON is the SSE/JSON view of one record.
type RecordJSON struct {
	Seq    uint64 `json:"seq"`
	Cycles uint64 `json:"cycles"`
	WallNS int64  `json:"wallNs"`
	Kind   string `json:"kind"`
	Worker string `json:"worker"`
	Arg1   uint64 `json:"arg1"`
	Arg2   uint64 `json:"arg2"`
}

// ToJSON converts a record to its JSON view.
func ToJSON(r Record) RecordJSON {
	return RecordJSON{
		Seq:    r.Seq,
		Cycles: r.Cycles,
		WallNS: r.WallNS,
		Kind:   r.Kind.String(),
		Worker: TrackName(r.Worker),
		Arg1:   r.Arg1,
		Arg2:   r.Arg2,
	}
}
