package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// syntheticRecs builds a two-track trace with nested phases, an event pair,
// and instant records — the shapes the exporter must render.
func syntheticRecs() []Record {
	return []Record{
		{Seq: 0, Worker: 0, Cycles: 10, WallNS: 1_000, Kind: KEventBegin, Arg1: 7},
		{Seq: 1, Worker: 0, Cycles: 20, WallNS: 2_000, Kind: KMalloc, Arg1: 3, Arg2: 64},
		{Seq: 2, Worker: 0, Cycles: 30, WallNS: 3_000, Kind: KPhaseBegin, Arg1: PhaseRecovery, Arg2: 7},
		{Seq: 3, Worker: 0, Cycles: 40, WallNS: 4_000, Kind: KPhaseBegin, Arg1: PhaseDiag1, Arg2: 7},
		{Seq: 4, Worker: 0, Cycles: 50, WallNS: 5_000, Kind: KRollback, Arg1: 2, Arg2: 100},
		{Seq: 5, Worker: 0, Cycles: 60, WallNS: 6_000, Kind: KPhaseEnd, Arg1: PhaseDiag1, Arg2: 1},
		{Seq: 6, Worker: 0, Cycles: 70, WallNS: 7_000, Kind: KPhaseEnd, Arg1: PhaseRecovery, Arg2: 1},
		{Seq: 7, Worker: 0, Cycles: 80, WallNS: 8_000, Kind: KEventEnd, Arg1: 7, Arg2: OutcomeRecovered},
		{Seq: 8, Worker: uint16(ValidationTrack(0, 0)), Cycles: 5, WallNS: 5_500, Kind: KPhaseBegin, Arg1: PhaseValidation, Arg2: 7},
		{Seq: 9, Worker: uint16(ValidationTrack(0, 0)), Cycles: 9, WallNS: 7_500, Kind: KPhaseEnd, Arg1: PhaseValidation, Arg2: 2},
		{Seq: 10, Worker: FleetTrack, Cycles: 0, WallNS: 900, Kind: KDispatch, Arg1: 0, Arg2: 1},
	}
}

func TestChromeTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, syntheticRecs()); err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, buf.String())
	}

	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	names := map[string]bool{}
	var metas int
	for _, ev := range events {
		if ev["ph"] == "M" {
			metas++
			args, _ := ev["args"].(map[string]any)
			name, _ := args["name"].(string)
			names[name] = true
		}
	}
	if metas != 3 {
		t.Fatalf("got %d thread_name metadata events, want 3 (one per track)", metas)
	}
	for _, want := range []string{"worker-0", "worker-0/validation-0", "fleet"} {
		if !names[want] {
			t.Fatalf("missing thread_name %q; got %v", want, names)
		}
	}
}

func TestChromeTraceSelfHeals(t *testing.T) {
	// A phase open at dump time must be closed; an end whose begin rotated
	// out of the ring must be dropped. Either way the export validates.
	recs := []Record{
		{Seq: 0, Worker: 0, WallNS: 1_000, Kind: KPhaseEnd, Arg1: PhaseDiag2, Arg2: 1},
		{Seq: 1, Worker: 0, WallNS: 2_000, Kind: KPhaseBegin, Arg1: PhaseRecovery, Arg2: 3},
		{Seq: 2, Worker: 0, WallNS: 3_000, Kind: KMalloc, Arg1: 1, Arg2: 8},
	}
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, recs); err != nil {
		t.Fatalf("ChromeTrace: %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("self-healed trace fails validation: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "openAtDump") {
		t.Fatal("open phase was not closed with an openAtDump marker")
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ChromeTrace(&buf, nil); err != nil {
		t.Fatalf("ChromeTrace(nil): %v", err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("empty trace fails validation: %v", err)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
	}{
		{"not an array", `{"ph":"i"}`},
		{"missing ph", `[{"ts":1,"pid":1,"tid":0}]`},
		{"missing ts", `[{"ph":"i","pid":1,"tid":0}]`},
		{"non-monotonic ts", `[
			{"ph":"i","name":"a","ts":5,"pid":1,"tid":0},
			{"ph":"i","name":"b","ts":4,"pid":1,"tid":0}]`},
		{"E without B", `[{"ph":"E","name":"recovery","ts":1,"pid":1,"tid":0}]`},
		{"unmatched B", `[{"ph":"B","name":"recovery","ts":1,"pid":1,"tid":0}]`},
		{"mismatched E name", `[
			{"ph":"B","name":"recovery","ts":1,"pid":1,"tid":0},
			{"ph":"E","name":"phase1","ts":2,"pid":1,"tid":0}]`},
		{"X without dur", `[{"ph":"X","name":"a","ts":1,"pid":1,"tid":0}]`},
		{"unknown ph", `[{"ph":"Z","name":"a","ts":1,"pid":1,"tid":0}]`},
	}
	for _, c := range cases {
		if err := ValidateChrome([]byte(c.data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted invalid input", c.name)
		}
	}
	// Monotonicity is per track: equal ts and different tracks are fine.
	ok := `[
		{"ph":"i","name":"a","ts":5,"pid":1,"tid":0},
		{"ph":"i","name":"b","ts":1,"pid":1,"tid":1},
		{"ph":"X","name":"c","ts":2,"pid":1,"tid":1,"dur":3}]`
	if err := ValidateChrome([]byte(ok)); err != nil {
		t.Errorf("ValidateChrome rejected valid input: %v", err)
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, syntheticRecs()); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	if got := strings.Count(out, "\n"); got != len(syntheticRecs()) {
		t.Fatalf("timeline has %d lines, want %d", got, len(syntheticRecs()))
	}
	for _, want := range []string{
		"malloc", "site=3 bytes=64",
		"recovery anchor=7",
		"outcome=recovered",
		"fleet", "worker-0/validation-0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestToJSON(t *testing.T) {
	r := Record{Seq: 4, Cycles: 99, WallNS: 123, Kind: KCOWCopy, Worker: 2, Arg1: 8, Arg2: 0}
	j := ToJSON(r)
	if j.Kind != "cow-copy" || j.Worker != "worker-2" || j.Seq != 4 || j.Cycles != 99 {
		t.Fatalf("ToJSON = %+v", j)
	}
	if _, err := json.Marshal(j); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}
