// The binary trace-file format written by `firstaid-run -trace` and read
// by `firstaid-trace`:
//
//	offset  size  field
//	0       8     magic "FATRACE1"
//	8       4     version (little-endian u32, currently 1)
//	12      4     record size in bytes (little-endian u32, currently 48)
//	16      ...   records, recordSize bytes each, little-endian fields
//
// Each record is the wire image of Record:
//
//	0   u64  Seq
//	8   u64  Cycles
//	16  i64  WallNS
//	24  u64  Arg1
//	32  u64  Arg2
//	40  u16  Kind
//	42  u16  Worker
//	44  u32  reserved (zero)
//
// The record count is not stored in the header: a trace cut short by a
// crash is still readable up to its last complete record, which is the
// point of an always-on flight recorder.

package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

const (
	fileMagic   = "FATRACE1"
	fileVersion = 1
	recordSize  = 48
)

// ErrBadTraceFile reports a file that is not a First-Aid trace.
var ErrBadTraceFile = errors.New("trace: not a First-Aid trace file")

func encodeRecord(buf []byte, r Record) {
	binary.LittleEndian.PutUint64(buf[0:], r.Seq)
	binary.LittleEndian.PutUint64(buf[8:], r.Cycles)
	binary.LittleEndian.PutUint64(buf[16:], uint64(r.WallNS))
	binary.LittleEndian.PutUint64(buf[24:], r.Arg1)
	binary.LittleEndian.PutUint64(buf[32:], r.Arg2)
	binary.LittleEndian.PutUint16(buf[40:], uint16(r.Kind))
	binary.LittleEndian.PutUint16(buf[42:], r.Worker)
	binary.LittleEndian.PutUint32(buf[44:], 0)
}

func decodeRecord(buf []byte) Record {
	return Record{
		Seq:    binary.LittleEndian.Uint64(buf[0:]),
		Cycles: binary.LittleEndian.Uint64(buf[8:]),
		WallNS: int64(binary.LittleEndian.Uint64(buf[16:])),
		Arg1:   binary.LittleEndian.Uint64(buf[24:]),
		Arg2:   binary.LittleEndian.Uint64(buf[32:]),
		Kind:   Kind(binary.LittleEndian.Uint16(buf[40:])),
		Worker: binary.LittleEndian.Uint16(buf[42:]),
	}
}

// Write encodes recs to w in the binary trace format.
func Write(w io.Writer, recs []Record) error {
	var hdr [16]byte
	copy(hdr[:8], fileMagic)
	binary.LittleEndian.PutUint32(hdr[8:], fileVersion)
	binary.LittleEndian.PutUint32(hdr[12:], recordSize)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [recordSize]byte
	for _, r := range recs {
		encodeRecord(buf[:], r)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// Read decodes a binary trace from r. A trailing partial record (a trace
// cut off mid-write) is discarded, not an error.
func Read(r io.Reader) ([]Record, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: short header", ErrBadTraceFile)
	}
	if string(hdr[:8]) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTraceFile, hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTraceFile, v)
	}
	rs := binary.LittleEndian.Uint32(hdr[12:])
	if rs < recordSize {
		return nil, fmt.Errorf("%w: record size %d too small", ErrBadTraceFile, rs)
	}
	var out []Record
	buf := make([]byte, rs)
	for {
		_, err := io.ReadFull(r, buf)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, decodeRecord(buf))
	}
}

// WriteFile writes recs to path in the binary trace format.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a binary trace from path.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
