// Package trace is the always-on execution tracer of the First-Aid
// runtime: a sharded ring buffer of fixed-size binary records, each
// stamped with both the simulated cycle clock and wall-clock time.
//
// Where telemetry (counters, histograms, journal spans) answers "how much"
// and "what happened per episode", the tracer answers "when, and in what
// interleaving": every malloc with its call-site, every COW page copy,
// every checkpoint, rollback, diagnosis phase and patch mutation lands in
// the ring in order, cheap enough to leave on in production. The design
// rules mirror telemetry's:
//
//   - Hot-path cost is one atomic add (the global sequence number), one
//     uncontended mutex (the record's shard) and a 48-byte in-place store.
//     Records are fixed size and the ring is preallocated: the steady
//     state performs no allocation.
//   - A nil *Tracer is the "off" switch. The zero Emitter — what a nil
//     tracer hands out — discards every Emit behind a single nil check,
//     so instrumented code carries no conditionals.
//   - Everything is safe under concurrency: fleet workers, validation
//     clones and HTTP readers (Snapshot, Since) may all touch the ring at
//     once. Writers interleave by shard; readers merge and sort by the
//     global sequence number.
//
// The ring keeps the most recent records; once full, each write overwrites
// the oldest record of its shard and the drop is counted (Dropped), never
// silent. Exporters (Chrome trace-event JSON, text timeline, the
// summarizer) and the binary file format live in this package too, so
// `firstaid-run -trace`, `firstaid-trace` and the fleet's /trace endpoints
// all speak the same records.
package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind identifies what a record describes. The numeric values are part of
// the binary trace-file format: append new kinds, never renumber.
type Kind uint16

const (
	// KNone is the zero kind; it never appears in a valid trace.
	KNone Kind = iota

	// Allocation path (proc/allocext: call-site is known there).
	KMalloc  // arg1 = call-site ID, arg2 = bytes requested
	KFree    // arg1 = call-site ID, arg2 = bytes released (0 if unknown)
	KRealloc // arg1 = call-site ID, arg2 = new size

	// Allocator internals (heap).
	KSbrkGrow  // arg1 = bytes grown, arg2 = size class of the triggering request
	KMmapAlloc // arg1 = bytes mapped, arg2 = size class

	// Address space (vmem).
	KPageFault // arg1 = faulting address, arg2 = access length (bit 63 set on writes)
	KCOWCopy   // arg1 = page number copied
	KSnapshot  // arg1 = pages captured
	KRestore   // arg1 = pages restored

	// Checkpointing.
	KCkptTake // arg1 = checkpoint seq, arg2 = dirty (COW) pages charged
	KRollback // arg1 = checkpoint seq, arg2 = replay cursor restored

	// Error monitoring.
	KTrap // arg1 = fault kind, arg2 = faulting address

	// Pipeline phases (diagnosis, recovery, validation).
	KPhaseBegin // arg1 = phase ID, arg2 = anchor (event seq)
	KPhaseEnd   // arg1 = phase ID, arg2 = work count

	// Patch pool.
	KPatchAdd      // arg1 = patch ID, arg2 = pool generation after the add
	KPatchRevoke   // arg1 = patch ID, arg2 = pool generation after the revoke
	KPatchValidate // arg1 = patch ID, arg2 = pool generation after the flag

	// Service plane (core streaming ingest, fleet dispatch).
	KEventBegin // arg1 = event seq
	KEventEnd   // arg1 = event seq, arg2 = outcome (OutcomeOK…)
	KDispatch   // arg1 = target worker, arg2 = its queue depth at dispatch

	// Sampled guard-page detection (internal/guard); records land on the
	// worker's guard track (GuardTrack).
	KGuardAlloc // arg1 = call-site ID, arg2 = bytes requested
	KGuardFree  // arg1 = free call-site ID, arg2 = object size quarantined
	KGuardHit   // arg1 = manifested bug class, arg2 = faulting address

	// Speculative recovery (internal/stages.Speculator); records land on
	// the supervisor's own track, while each racing clone executes on a
	// derived SpecTrack lane.
	KSpecLaunch // arg1 = hypothesis ordinal, arg2 = checkpoint seq
	KSpecWin    // arg1 = hypothesis ordinal, arg2 = 1 if served from the standby clone
	KSpecCancel // arg1 = hypothesis ordinal, arg2 = checkpoint seq

	// Batched ingest (core.IngestBatch, fleet batch dispatch). Per-event
	// KEventBegin/End records are amortized away on the batch path; these
	// bracket the whole batch instead.
	KBatchBegin // arg1 = first event seq, arg2 = batch length
	KBatchEnd   // arg1 = first event seq, arg2 = batch length
)

// Event outcome codes carried in KEventEnd.Arg2.
const (
	OutcomeOK        = 0
	OutcomeRecovered = 1
	OutcomeSkipped   = 2
)

var kindNames = map[Kind]string{
	KMalloc:        "malloc",
	KFree:          "free",
	KRealloc:       "realloc",
	KSbrkGrow:      "sbrk-grow",
	KMmapAlloc:     "mmap-alloc",
	KPageFault:     "page-fault",
	KCOWCopy:       "cow-copy",
	KSnapshot:      "snapshot",
	KRestore:       "restore",
	KCkptTake:      "ckpt-take",
	KRollback:      "rollback",
	KTrap:          "trap",
	KPhaseBegin:    "phase-begin",
	KPhaseEnd:      "phase-end",
	KPatchAdd:      "patch-add",
	KPatchRevoke:   "patch-revoke",
	KPatchValidate: "patch-validate",
	KEventBegin:    "event-begin",
	KEventEnd:      "event-end",
	KDispatch:      "dispatch",
	KGuardAlloc:    "guard-alloc",
	KGuardFree:     "guard-free",
	KGuardHit:      "guard-hit",
	KSpecLaunch:    "spec-launch",
	KSpecWin:       "spec-win",
	KSpecCancel:    "spec-cancel",
	KBatchBegin:    "batch-begin",
	KBatchEnd:      "batch-end",
}

// String returns the kind's stable name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "kind-" + formatUint(uint64(k))
}

// Phase IDs carried in KPhaseBegin/KPhaseEnd.Arg1. Values are part of the
// file format: append, never renumber.
const (
	PhaseRecovery     = 1 // the whole failure→patch→rollback episode
	PhaseDiag1        = 2 // diagnosis phase 1: backward checkpoint search
	PhaseDiag2        = 3 // diagnosis phase 2: bug/site identification
	PhasePatchGen     = 4 // patch generation and application
	PhaseRollback     = 5 // rollback to the chosen checkpoint
	PhaseValidation   = 6 // patch validation over the buggy region
	PhaseEarlyDetect  = 7 // protected-region eager detection; end Arg2 = detection latency in events
	PhaseGuardConfirm = 8 // guard-evidence fast path: single confirmation re-execution
)

var phaseNames = map[uint64]string{
	PhaseRecovery:     "recovery",
	PhaseDiag1:        "phase1",
	PhaseDiag2:        "phase2",
	PhasePatchGen:     "patch-gen",
	PhaseRollback:     "rollback",
	PhaseValidation:   "validation",
	PhaseEarlyDetect:  "early-detect",
	PhaseGuardConfirm: "guard-confirm",
}

// PhaseName returns the stable name of a phase ID.
func PhaseName(id uint64) string {
	if s, ok := phaseNames[id]; ok {
		return s
	}
	return "phase-" + formatUint(id)
}

// Record is one trace entry: 48 bytes, fixed layout (see file.go for the
// on-disk encoding). Seq is a global order over all workers; Cycles is the
// emitting machine's monotonic simulated time; WallNS is wall-clock
// nanoseconds since the Unix epoch.
type Record struct {
	Seq    uint64
	Cycles uint64
	WallNS int64
	Arg1   uint64
	Arg2   uint64
	Kind   Kind
	Worker uint16
}

// ValidationTrackBit marks a worker ID as a validation-clone track: the
// parallel-validation goroutine of a worker gets a derived track so its
// records never interleave with the owning worker's on a timeline view.
const ValidationTrackBit = 0x8000

// ValidationTrack derives the trace track for the n-th validation clone of
// the given worker. Parent worker and clone ordinal are packed so that
// concurrent clones (even of the same worker) land on distinct tracks.
func ValidationTrack(worker int, n uint64) int {
	return ValidationTrackBit | (worker&0x1F)<<10 | int(n&0x3FF)
}

// FleetTrack is the track of the fleet front-end itself (dispatch
// decisions, HTTP ingest) — distinct from every worker and validation
// track.
const FleetTrack = 0x7FFF

// GuardTrackBit marks a worker ID as a guard track: the sampled guard-page
// tier of a worker emits on its own derived track so guard events read as
// their own timeline lane next to the worker's allocation traffic.
const GuardTrackBit = 0x4000

// GuardTrack derives the guard-tier trace track of the given worker.
func GuardTrack(worker int) int {
	return GuardTrackBit | (worker & 0xFFF)
}

// SpecTrackBit marks a worker ID as a speculation track: each racing
// recovery clone of a worker executes on its own derived lane so the
// hypothesis re-executions read as parallel timelines under the worker.
// The bit sits below GuardTrackBit, and a packed spec track never reaches
// 0x4000, so the Validation > Guard > Spec test order is unambiguous.
const SpecTrackBit = 0x2000

// SpecTrack derives the trace track of the n-th speculative clone launched
// by the given worker's supervisor.
func SpecTrack(worker int, n uint64) int {
	return SpecTrackBit | (worker&0x1F)<<8 | int(n&0xFF)
}

// TrackBelongsTo reports whether records on the given track belong to the
// given worker: its main track, its guard track, or any of its validation
// clone tracks. The fleet track belongs to no worker. The validation bit
// must be tested before the guard bit — the validation track of a worker
// with bit 4 set (worker 16..31) also carries GuardTrackBit in its packed
// worker field. Validation tracks keep only the low 5 worker bits, so the
// comparison folds the worker the same way ValidationTrack does.
func TrackBelongsTo(track uint16, worker int) bool {
	switch {
	case track == FleetTrack:
		return false
	case track&ValidationTrackBit != 0:
		return int(track>>10)&0x1F == worker&0x1F
	case track&GuardTrackBit != 0:
		return int(track&0xFFF) == worker
	case track&SpecTrackBit != 0:
		return int(track>>8)&0x1F == worker&0x1F
	default:
		return int(track) == worker
	}
}

// TrackName renders a worker/track ID for exporters.
func TrackName(worker uint16) string {
	if worker == FleetTrack {
		return "fleet"
	}
	if worker&ValidationTrackBit != 0 {
		parent := uint64(worker>>10) & 0x1F
		return "worker-" + formatUint(parent) + "/validation-" + formatUint(uint64(worker&0x3FF))
	}
	if worker&GuardTrackBit != 0 {
		return "worker-" + formatUint(uint64(worker&0xFFF)) + "/guard"
	}
	if worker&SpecTrackBit != 0 {
		return "worker-" + formatUint(uint64(worker>>8)&0x1F) + "/spec-" + formatUint(uint64(worker&0xFF))
	}
	return "worker-" + formatUint(uint64(worker))
}

// DefaultCapacity is the default ring capacity in records (48 bytes each,
// so the default ring is ~3 MiB — hours of steady-state service traffic,
// minutes of allocation-level detail).
const DefaultCapacity = 1 << 16

// numShards spreads writers over independently-locked ring segments so
// fleet workers do not serialize on one mutex. Power of two: the global
// sequence number selects the shard by mask, which also round-robins
// consecutive records of a single writer across all shards.
const numShards = 8

type shard struct {
	mu  sync.Mutex
	buf []Record
	n   uint64 // records ever written to this shard
}

// Tracer is the ring. A nil *Tracer is a valid disabled tracer: Emitter
// returns the zero Emitter and all read methods return empty results.
type Tracer struct {
	shards [numShards]shard
	seq    atomic.Uint64
}

// New creates a tracer retaining about the given number of records
// (rounded up to a multiple of the shard count; <= 0 selects
// DefaultCapacity).
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	t := &Tracer{}
	for i := range t.shards {
		t.shards[i].buf = make([]Record, per)
	}
	return t
}

// Emitter returns an emit handle bound to a worker track and a cycle
// clock (nil clock stamps zero cycles — fine for components with no
// machine, like the fleet front-end or the shared patch pool). A nil
// tracer returns the zero Emitter, which discards everything.
func (t *Tracer) Emitter(worker int, clock func() uint64) Emitter {
	if t == nil {
		return Emitter{}
	}
	return Emitter{t: t, clock: clock, worker: uint16(worker)}
}

func (t *Tracer) emit(worker uint16, kind Kind, cycles, arg1, arg2 uint64) {
	seq := t.seq.Add(1) - 1
	wall := time.Now().UnixNano()
	sh := &t.shards[seq&(numShards-1)]
	sh.mu.Lock()
	r := &sh.buf[sh.n%uint64(len(sh.buf))]
	r.Seq = seq
	r.Cycles = cycles
	r.WallNS = wall
	r.Arg1 = arg1
	r.Arg2 = arg2
	r.Kind = kind
	r.Worker = worker
	sh.n++
	sh.mu.Unlock()
}

// Emitted returns the total number of records ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.seq.Load()
}

// Dropped returns the number of records overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	var d uint64
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		if over := sh.n; over > uint64(len(sh.buf)) {
			d += over - uint64(len(sh.buf))
		}
		sh.mu.Unlock()
	}
	return d
}

// Snapshot returns a copy of the retained records in global order (by
// Seq). Safe while writers are emitting; the copy is per-shard consistent.
func (t *Tracer) Snapshot() []Record {
	return t.Since(0)
}

// Since returns the retained records with Seq >= seq, in global order.
// This is the SSE tail's cursor read: poll with the last seen Seq+1.
func (t *Tracer) Since(seq uint64) []Record {
	if t == nil {
		return nil
	}
	var out []Record
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		size := uint64(len(sh.buf))
		n := sh.n
		start := uint64(0)
		if n > size {
			start = n - size
		}
		for j := start; j < n; j++ {
			r := sh.buf[j%size]
			if r.Seq >= seq {
				out = append(out, r)
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Emitter is a value-type emit handle: component structs store it by value
// and call Emit unconditionally — the zero Emitter (nil tracer) discards
// behind one nil check, keeping the hot path conditional-free at the call
// sites.
type Emitter struct {
	t      *Tracer
	clock  func() uint64
	worker uint16
}

// Emit appends one record. On the zero Emitter this is a nil check and a
// return.
func (em Emitter) Emit(kind Kind, arg1, arg2 uint64) {
	if em.t == nil {
		return
	}
	var cycles uint64
	if em.clock != nil {
		cycles = em.clock()
	}
	em.t.emit(em.worker, kind, cycles, arg1, arg2)
}

// Enabled reports whether emits reach a ring.
func (em Emitter) Enabled() bool { return em.t != nil }

// Tracer returns the underlying ring (nil on the zero Emitter).
func (em Emitter) Tracer() *Tracer { return em.t }

// Worker returns the emitter's track ID.
func (em Emitter) Worker() int { return int(em.worker) }

// WithTrack returns a copy of the emitter bound to a different worker
// track but the same ring and clock.
func (em Emitter) WithTrack(worker int) Emitter {
	em.worker = uint16(worker)
	return em
}

// WithClock returns a copy of the emitter with a different cycle clock.
func (em Emitter) WithClock(clock func() uint64) Emitter {
	em.clock = clock
	return em
}

func formatUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for v > 0 {
		pos--
		buf[pos] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[pos:])
}
