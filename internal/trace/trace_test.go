package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestEmitSnapshotOrder(t *testing.T) {
	tr := New(1024)
	em := tr.Emitter(3, func() uint64 { return 77 })
	for i := 0; i < 100; i++ {
		em.Emit(KMalloc, uint64(i), uint64(i*2))
	}
	recs := tr.Snapshot()
	if len(recs) != 100 {
		t.Fatalf("Snapshot returned %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i) {
			t.Fatalf("record %d has Seq %d; snapshot not in global order", i, r.Seq)
		}
		if r.Kind != KMalloc || r.Worker != 3 || r.Cycles != 77 {
			t.Fatalf("record %d = %+v, want KMalloc on worker 3 at cycle 77", i, r)
		}
		if r.Arg1 != uint64(i) || r.Arg2 != uint64(i*2) {
			t.Fatalf("record %d args = (%d, %d), want (%d, %d)", i, r.Arg1, r.Arg2, i, i*2)
		}
	}
	if got := tr.Emitted(); got != 100 {
		t.Fatalf("Emitted() = %d, want 100", got)
	}
	if got := tr.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d, want 0 before wraparound", got)
	}
}

func TestNilTracerIsOff(t *testing.T) {
	var tr *Tracer
	em := tr.Emitter(0, nil)
	if em.Enabled() {
		t.Fatal("zero Emitter reports Enabled")
	}
	em.Emit(KMalloc, 1, 2) // must not panic
	if tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports nonzero counts")
	}
	if recs := tr.Snapshot(); recs != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", recs)
	}
	if recs := tr.Since(0); recs != nil {
		t.Fatalf("nil tracer Since = %v, want nil", recs)
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	tr := New(16) // 2 records per shard
	em := tr.Emitter(0, nil)
	const total = 40
	for i := 0; i < total; i++ {
		em.Emit(KFree, uint64(i), 0)
	}
	recs := tr.Snapshot()
	if len(recs) != 16 {
		t.Fatalf("retained %d records, want 16", len(recs))
	}
	// Sequence numbers round-robin across shards, so the retained set is
	// exactly the newest 16 records.
	for i, r := range recs {
		if want := uint64(total - 16 + i); r.Seq != want {
			t.Fatalf("retained record %d has Seq %d, want %d", i, r.Seq, want)
		}
	}
	if got := tr.Dropped(); got != total-16 {
		t.Fatalf("Dropped() = %d, want %d", got, total-16)
	}
	if got := tr.Emitted(); got != total {
		t.Fatalf("Emitted() = %d, want %d", got, total)
	}
}

func TestSinceCursor(t *testing.T) {
	tr := New(1024)
	em := tr.Emitter(0, nil)
	for i := 0; i < 20; i++ {
		em.Emit(KTrap, uint64(i), 0)
	}
	recs := tr.Since(15)
	if len(recs) != 5 {
		t.Fatalf("Since(15) returned %d records, want 5", len(recs))
	}
	for i, r := range recs {
		if want := uint64(15 + i); r.Seq != want {
			t.Fatalf("Since record %d has Seq %d, want %d", i, r.Seq, want)
		}
	}
	if recs := tr.Since(tr.Emitted()); len(recs) != 0 {
		t.Fatalf("Since(tail) returned %d records, want 0", len(recs))
	}
}

func TestEmitterTrackAndClock(t *testing.T) {
	tr := New(64)
	em := tr.Emitter(2, func() uint64 { return 10 })
	em2 := em.WithTrack(5).WithClock(func() uint64 { return 99 })
	em.Emit(KSnapshot, 1, 0)
	em2.Emit(KRestore, 2, 0)
	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Worker != 2 || recs[0].Cycles != 10 {
		t.Fatalf("base emitter wrote %+v", recs[0])
	}
	if recs[1].Worker != 5 || recs[1].Cycles != 99 {
		t.Fatalf("derived emitter wrote %+v", recs[1])
	}
	if em.Worker() != 2 || em2.Worker() != 5 {
		t.Fatal("Worker() mismatch")
	}
	if em.Tracer() != tr {
		t.Fatal("Tracer() lost the ring")
	}
}

func TestConcurrentEmitAndRead(t *testing.T) {
	tr := New(256)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			em := tr.Emitter(w, nil)
			for i := 0; i < 500; i++ {
				em.Emit(KMalloc, uint64(i), 8)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			tr.Snapshot()
			tr.Since(tr.Emitted() / 2)
			tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Emitted(); got != 2000 {
		t.Fatalf("Emitted() = %d, want 2000", got)
	}
	recs := tr.Snapshot()
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("snapshot out of order at %d: %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}
}

func TestTrackNames(t *testing.T) {
	cases := []struct {
		worker int
		want   string
	}{
		{0, "worker-0"},
		{7, "worker-7"},
		{FleetTrack, "fleet"},
		{ValidationTrack(3, 0), "worker-3/validation-0"},
		{ValidationTrack(3, 2), "worker-3/validation-2"},
	}
	for _, c := range cases {
		if got := TrackName(uint16(c.worker)); got != c.want {
			t.Errorf("TrackName(%#x) = %q, want %q", c.worker, got, c.want)
		}
	}
	// Concurrent clones of the same worker must land on distinct tracks.
	if ValidationTrack(3, 0) == ValidationTrack(3, 1) {
		t.Error("validation clones of one worker share a track")
	}
	if ValidationTrack(2, 0) == ValidationTrack(3, 0) {
		t.Error("validation clones of different workers share a track")
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := New(64)
	em := tr.Emitter(1, func() uint64 { return 42 })
	em.Emit(KMalloc, 5, 128)
	em.Emit(KPhaseBegin, PhaseRecovery, 10)
	em.Emit(KPhaseEnd, PhaseRecovery, 3)
	want := tr.Snapshot()

	path := filepath.Join(t.TempDir(), "round.trace")
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadTruncatedFile(t *testing.T) {
	recs := []Record{
		{Seq: 0, Kind: KMalloc, Arg1: 1, Arg2: 64},
		{Seq: 1, Kind: KFree, Arg1: 1},
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	// Chop the file mid-way through the second record, as a crash would.
	cut := buf.Bytes()[:buf.Len()-20]
	got, err := Read(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("Read of truncated trace: %v", err)
	}
	if len(got) != 1 || got[0] != recs[0] {
		t.Fatalf("truncated read = %+v, want just the first record", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("NOTATRACEFILE-----------"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); !errors.Is(err, ErrBadTraceFile) {
		t.Fatalf("ReadFile(garbage) error = %v, want ErrBadTraceFile", err)
	}
	if _, err := Read(bytes.NewReader([]byte("short"))); !errors.Is(err, ErrBadTraceFile) {
		t.Fatalf("Read(short) error = %v, want ErrBadTraceFile", err)
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Seq: 0, Worker: 1, Cycles: 100, WallNS: 1000, Kind: KPhaseBegin, Arg1: PhaseRecovery, Arg2: 7},
		{Seq: 1, Worker: 1, Cycles: 110, WallNS: 1100, Kind: KMalloc, Arg1: 9, Arg2: 64},
		{Seq: 2, Worker: 1, Cycles: 120, WallNS: 1200, Kind: KMalloc, Arg1: 9, Arg2: 32},
		{Seq: 3, Worker: 1, Cycles: 130, WallNS: 1300, Kind: KMalloc, Arg1: 4, Arg2: 512},
		{Seq: 4, Worker: 1, Cycles: 400, WallNS: 4000, Kind: KPhaseEnd, Arg1: PhaseRecovery, Arg2: 2},
		// A phase still open at dump time on another track.
		{Seq: 5, Worker: 2, Cycles: 50, WallNS: 5000, Kind: KPhaseBegin, Arg1: PhaseValidation, Arg2: 7},
	}
	s := Summarize(recs)
	if s.Records != 6 || s.Workers != 2 {
		t.Fatalf("records/workers = %d/%d, want 6/2", s.Records, s.Workers)
	}
	if s.SpanNS != 4000 {
		t.Fatalf("SpanNS = %d, want 4000", s.SpanNS)
	}
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %+v, want recovery + validation", s.Phases)
	}
	rec := s.Phases[0]
	if rec.Name != "recovery" || rec.Count != 1 || rec.Cycles != 300 || rec.WallNS != 3000 || rec.WorkDone != 2 {
		t.Fatalf("recovery phase = %+v", rec)
	}
	val := s.Phases[1]
	if val.Name != "validation" || val.Count != 0 || val.Open != 1 {
		t.Fatalf("open validation phase = %+v", val)
	}
	if len(s.TopSites) != 2 || s.TopSites[0].Site != 4 || s.TopSites[0].Bytes != 512 {
		t.Fatalf("TopSites = %+v, want site 4 first by bytes", s.TopSites)
	}
	if s.TopSites[1].Site != 9 || s.TopSites[1].Count != 2 || s.TopSites[1].Bytes != 96 {
		t.Fatalf("TopSites[1] = %+v", s.TopSites[1])
	}
	if s.Kinds["malloc"] != 3 || s.Kinds["phase-begin"] != 2 {
		t.Fatalf("Kinds = %+v", s.Kinds)
	}

	var out bytes.Buffer
	if err := s.Format(&out, 10); err != nil {
		t.Fatalf("Format: %v", err)
	}
	for _, want := range []string{"per-phase breakdown", "recovery", "top 2 call-sites", "records by kind"} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Fatalf("Format output missing %q:\n%s", want, out.String())
		}
	}
}

func TestTrackBelongsTo(t *testing.T) {
	cases := []struct {
		track  uint16
		worker int
		want   bool
	}{
		{0, 0, true},
		{3, 3, true},
		{3, 2, false},
		{FleetTrack, 0, false},
		{uint16(GuardTrack(5)), 5, true},
		{uint16(GuardTrack(5)), 4, false},
		{uint16(ValidationTrack(2, 0)), 2, true},
		{uint16(ValidationTrack(2, 7)), 2, true},
		{uint16(ValidationTrack(2, 7)), 3, false},
		// Worker 16 sets bit 4, so its validation track also carries
		// GuardTrackBit in the packed field — the validation test must win.
		{uint16(ValidationTrack(16, 0)), 16, true},
		{uint16(ValidationTrack(16, 0)), 0, false},
	}
	for _, c := range cases {
		if got := TrackBelongsTo(c.track, c.worker); got != c.want {
			t.Errorf("TrackBelongsTo(%#x, %d) = %v, want %v", c.track, c.worker, got, c.want)
		}
	}
}
