// Package validate implements First-Aid's patch validation engine (paper
// §5).
//
// Even though the diagnosis algorithm cannot confuse one memory-bug class
// with another, a non-memory bug whose manifestation depends on heap layout
// could still be misdiagnosed as a memory bug. To rule that out, the engine
// re-executes the buggy region several times with a randomized allocation
// algorithm and checks that the patch's effect is *consistent*:
//
//	(a) the patch is triggered the same number of times,
//	(b) the same number of illegal accesses is neutralised, and
//	(c) each illegal access is made by the same instruction at the same
//	    offset within its object (addresses are randomized).
//
// A patch with layout-dependent (accidental) effects fails the check and is
// removed. The collected traces — including an unpatched baseline run —
// become items 4 and 5 of the bug report (Figure 5).
package validate

import (
	"fmt"

	"firstaid/internal/allocext"
	"firstaid/internal/checkpoint"
	"firstaid/internal/proc"
)

// Machine is the substrate the engine drives; core.Machine implements it.
type Machine interface {
	Rollback(cp *checkpoint.Checkpoint)
	// RunValidation re-runs events in validation mode until the replay
	// cursor reaches `until` or a fault traps. randomize selects the
	// randomized allocator; patched selects whether the patch source is
	// attached.
	RunValidation(seed uint64, randomize, patched bool, until int) (*allocext.Trace, *proc.Fault)
}

// Config tunes the engine.
type Config struct {
	// Iterations is the number of randomized patched re-executions
	// (default 3, as in the paper).
	Iterations int
}

// Result is the validation outcome.
type Result struct {
	// Consistent reports whether every criterion held across iterations.
	Consistent bool
	// Reason explains an inconsistency.
	Reason string
	// Traces are the randomized patched-run traces (one per iteration).
	Traces []*allocext.Trace
	// Faults are the corresponding faults (normally all nil: the patch
	// must survive the region).
	Faults []*proc.Fault
	// Baseline is the unpatched, non-randomized trace for the report's
	// with/without diff; BaselineFault is its (expected) failure.
	Baseline      *allocext.Trace
	BaselineFault *proc.Fault
}

// Engine validates patches over a Machine.
type Engine struct {
	m   Machine
	cfg Config
}

// New creates an engine.
func New(m Machine, cfg Config) *Engine {
	if cfg.Iterations == 0 {
		cfg.Iterations = 3
	}
	return &Engine{m: m, cfg: cfg}
}

// Validate re-executes the buggy region [cp, until) with randomized
// allocation and the patches applied, plus one unpatched baseline run, and
// checks consistency.
func (e *Engine) Validate(cp *checkpoint.Checkpoint, until int) Result {
	var res Result

	// Baseline: without patches, deterministic allocator — reproduces
	// the original failure and yields the "without patch" trace.
	e.m.Rollback(cp)
	res.Baseline, res.BaselineFault = e.m.RunValidation(0, false, false, until)

	for i := 0; i < e.cfg.Iterations; i++ {
		e.m.Rollback(cp)
		seed := 0x9E3779B97F4A7C15 * uint64(i+1)
		tr, f := e.m.RunValidation(seed, true, true, until)
		res.Traces = append(res.Traces, tr)
		res.Faults = append(res.Faults, f)
	}

	res.Consistent, res.Reason = e.consistent(res)
	return res
}

func (e *Engine) consistent(res Result) (bool, string) {
	if len(res.Traces) == 0 {
		return false, "no validation traces collected"
	}
	// The patched region must survive in every iteration.
	for i, f := range res.Faults {
		if f != nil {
			return false, fmt.Sprintf("iteration %d failed despite patches: %v", i, f)
		}
	}
	ref := res.Traces[0]
	refSigs := ref.Signatures()
	for i := 1; i < len(res.Traces); i++ {
		tr := res.Traces[i]
		// (a) same per-site trigger counts.
		if len(tr.Triggers) != len(ref.Triggers) {
			return false, fmt.Sprintf("iteration %d: patch triggered at %d sites vs %d", i, len(tr.Triggers), len(ref.Triggers))
		}
		for site, n := range ref.Triggers {
			if tr.Triggers[site] != n {
				return false, fmt.Sprintf("iteration %d: patch at site %d triggered %d times vs %d", i, site, tr.Triggers[site], n)
			}
		}
		// (b) same total illegal-access count.
		if len(tr.Illegal) != len(ref.Illegal) {
			return false, fmt.Sprintf("iteration %d: %d illegal accesses vs %d", i, len(tr.Illegal), len(ref.Illegal))
		}
		// (c) same (instruction, offset) multiset.
		sigs := tr.Signatures()
		if len(sigs) != len(refSigs) {
			return false, fmt.Sprintf("iteration %d: %d distinct access signatures vs %d", i, len(sigs), len(refSigs))
		}
		for sig, n := range refSigs {
			if sigs[sig] != n {
				return false, fmt.Sprintf("iteration %d: access %v/%q@%d count %d vs %d", i, sig.Kind, sig.Instr, sig.Offset, sigs[sig], n)
			}
		}
	}
	return true, ""
}
