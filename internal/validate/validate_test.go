package validate

import (
	"strings"
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/checkpoint"
	"firstaid/internal/proc"
)

// scriptedMachine feeds pre-built traces to the engine.
type scriptedMachine struct {
	traces    []*allocext.Trace
	faults    []*proc.Fault
	baseline  *allocext.Trace
	baseFault *proc.Fault
	calls     int
	rollbacks int
}

func (m *scriptedMachine) Rollback(*checkpoint.Checkpoint) { m.rollbacks++ }

func (m *scriptedMachine) RunValidation(seed uint64, randomize, patched bool, until int) (*allocext.Trace, *proc.Fault) {
	if !patched {
		return m.baseline, m.baseFault
	}
	i := m.calls
	m.calls++
	if i >= len(m.traces) {
		i = len(m.traces) - 1
	}
	var f *proc.Fault
	if i < len(m.faults) {
		f = m.faults[i]
	}
	return m.traces[i], f
}

func mkTrace(site callsite.ID, triggers int, accesses ...allocext.IllegalAccess) *allocext.Trace {
	tr := allocext.NewTrace()
	tr.Triggers[site] = triggers
	tr.Illegal = append(tr.Illegal, accesses...)
	return tr
}

func acc(instr string, offset int, obj uint32) allocext.IllegalAccess {
	return allocext.IllegalAccess{
		Kind: allocext.FreedRead, PatchSite: 1, Instr: instr, Obj: obj, Offset: offset, Len: 4,
	}
}

func cp() *checkpoint.Checkpoint { return &checkpoint.Checkpoint{} }

func TestConsistentTracesValidate(t *testing.T) {
	// Same triggers, same signatures, different (randomized) addresses.
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5, acc("revisit:check", 0, 0x1000), acc("revisit:check", 8, 0x1000)),
			mkTrace(1, 5, acc("revisit:check", 0, 0x2000), acc("revisit:check", 8, 0x2000)),
			mkTrace(1, 5, acc("revisit:check", 0, 0x3000), acc("revisit:check", 8, 0x3000)),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if !res.Consistent {
		t.Fatalf("inconsistent: %s", res.Reason)
	}
	if m.rollbacks != 4 {
		t.Fatalf("rollbacks = %d, want 4 (baseline + 3 iterations)", m.rollbacks)
	}
	if len(res.Traces) != 3 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
}

func TestTriggerCountMismatchFails(t *testing.T) {
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5),
			mkTrace(1, 4), // one fewer firing
			mkTrace(1, 5),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if res.Consistent {
		t.Fatal("trigger mismatch accepted")
	}
	if !strings.Contains(res.Reason, "triggered") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestIllegalAccessCountMismatchFails(t *testing.T) {
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5, acc("f", 0, 1)),
			mkTrace(1, 5, acc("f", 0, 1), acc("f", 4, 1)),
			mkTrace(1, 5, acc("f", 0, 1)),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if res.Consistent {
		t.Fatal("count mismatch accepted")
	}
}

func TestSignatureMismatchFails(t *testing.T) {
	// Same count, but the access comes from a different instruction — a
	// layout-dependent side effect, §5's misdiagnosis guard.
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5, acc("revisit:check", 0, 1)),
			mkTrace(1, 5, acc("search:read", 0, 2)),
			mkTrace(1, 5, acc("revisit:check", 0, 3)),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if res.Consistent {
		t.Fatal("signature mismatch accepted")
	}
}

func TestOffsetMismatchFails(t *testing.T) {
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5, acc("f", 0, 1)),
			mkTrace(1, 5, acc("f", 8, 2)), // different offset in the object
			mkTrace(1, 5, acc("f", 0, 3)),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if res.Consistent {
		t.Fatal("offset mismatch accepted")
	}
}

func TestFaultDuringPatchedRunFails(t *testing.T) {
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces: []*allocext.Trace{
			mkTrace(1, 5), mkTrace(1, 5), mkTrace(1, 5),
		},
		faults: []*proc.Fault{nil, {Kind: proc.AssertFailure, Msg: "still broken"}, nil},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if res.Consistent {
		t.Fatal("patched-run fault accepted")
	}
	if !strings.Contains(res.Reason, "despite patches") {
		t.Fatalf("reason = %q", res.Reason)
	}
}

func TestBaselineFaultIsExpectedAndKept(t *testing.T) {
	m := &scriptedMachine{
		baseline:  mkTrace(0, 0),
		baseFault: &proc.Fault{Kind: proc.AssertFailure, Msg: "original bug"},
		traces: []*allocext.Trace{
			mkTrace(1, 5), mkTrace(1, 5), mkTrace(1, 5),
		},
	}
	res := New(m, Config{}).Validate(cp(), 100)
	if !res.Consistent {
		t.Fatalf("baseline fault broke validation: %s", res.Reason)
	}
	if res.BaselineFault == nil {
		t.Fatal("baseline fault not recorded for the report")
	}
}

func TestIterationCountConfigurable(t *testing.T) {
	m := &scriptedMachine{
		baseline: allocext.NewTrace(),
		traces:   []*allocext.Trace{mkTrace(1, 1), mkTrace(1, 1), mkTrace(1, 1), mkTrace(1, 1), mkTrace(1, 1)},
	}
	res := New(m, Config{Iterations: 5}).Validate(cp(), 100)
	if len(res.Traces) != 5 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	if !res.Consistent {
		t.Fatal(res.Reason)
	}
}
