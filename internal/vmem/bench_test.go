package vmem

import (
	"runtime"
	"testing"
	"time"
)

// benchSpace returns a Space with heapBytes of sbrk heap, every page
// written once so all frames are resident and private.
func benchSpace(tb testing.TB, heapBytes int) (*Space, Addr) {
	tb.Helper()
	s := New(64 << 20)
	base, err := s.Sbrk(uint32(heapBytes))
	if err != nil {
		tb.Fatal(err)
	}
	if err := s.Fill(base, 0xA5, heapBytes); err != nil {
		tb.Fatal(err)
	}
	return s, base
}

var benchHeapSizes = []struct {
	name  string
	bytes int
}{
	{"1MiB", 1 << 20},
	{"16MiB", 16 << 20},
}

func BenchmarkSnapshot(b *testing.B) {
	for _, sz := range benchHeapSizes {
		b.Run(sz.name, func(b *testing.B) {
			s, _ := benchSpace(b, sz.bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := s.Snapshot()
				b.StopTimer()
				snap.Release()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkRestore measures the steady-state rollback loop of diagnosis:
// dirty a handful of pages, rewind to the checkpoint, repeat. With the
// slot journal and the page freelist the per-iteration cost is O(dirty)
// and allocation-free regardless of heap size.
func BenchmarkRestore(b *testing.B) {
	const dirtyPages = 8
	for _, sz := range benchHeapSizes {
		b.Run(sz.name, func(b *testing.B) {
			s, base := benchSpace(b, sz.bytes)
			snap := s.Snapshot()
			defer snap.Release()
			touch := func(i int) {
				for pg := 0; pg < dirtyPages; pg++ {
					s.WriteU32(base+Addr(pg*PageSize), uint32(i))
				}
			}
			// Warm the freelist and journal capacity.
			for i := 0; i < 8; i++ {
				touch(i)
				s.Restore(snap)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				touch(i)
				s.Restore(snap)
			}
		})
	}
}

func BenchmarkClone(b *testing.B) {
	for _, sz := range benchHeapSizes {
		b.Run(sz.name, func(b *testing.B) {
			s, _ := benchSpace(b, sz.bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.Clone()
			}
		})
	}
}

func BenchmarkCloneCOW(b *testing.B) {
	for _, sz := range benchHeapSizes {
		b.Run(sz.name, func(b *testing.B) {
			s, _ := benchSpace(b, sz.bytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = s.CloneCOW()
			}
		})
	}
}

// BenchmarkWordAccessGuard enforces the micro-TLB design win in-process:
// aligned ReadU32/WriteU32 with the fast paths on must beat the original
// byte-assembly route by at least 2x. Interleaved best-of rounds with one
// re-measure, the repo's standard guard shape.
func BenchmarkWordAccessGuard(b *testing.B) {
	const (
		target = 2.0
		ops    = 1 << 20
		rounds = 5
	)

	run := func(fast bool) time.Duration {
		s, base := benchSpace(b, 1<<20)
		s.SetFastPaths(fast)
		t0 := time.Now()
		var acc uint32
		for i := 0; i < ops; i++ {
			a := base + Addr(i*8)%(1<<19)
			s.WriteU32(a, uint32(i))
			v, _ := s.ReadU32(a)
			acc += v
		}
		runtime.KeepAlive(acc)
		return time.Since(t0)
	}

	measure := func() float64 {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var slow, fast time.Duration
		run(false) // warmup
		run(true)
		for r := 0; r < rounds; r++ {
			slow = best(run(false), slow)
			fast = best(run(true), fast)
		}
		return float64(slow) / float64(fast)
	}

	speedup := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			speedup = measure()
			if speedup >= target {
				break
			}
		}
	}
	b.ReportMetric(speedup, "speedup-x")
	if speedup < target {
		b.Fatalf("word fast path is %.2fx the byte path, want >= %.1fx", speedup, target)
	}
}

// BenchmarkCloneCOWGuard enforces the validation-clone acceptance numbers
// on a 16 MiB heap: CloneCOW must be >= 10x faster than the deep Clone and
// allocate O(page-table pointers) — a handful of allocations (table slice,
// mmap map, Space shell), not one per page.
func BenchmarkCloneCOWGuard(b *testing.B) {
	const (
		target    = 10.0
		clones    = 20
		rounds    = 4
		allocsMax = 16
	)
	s, _ := benchSpace(b, 16<<20)

	run := func(cow bool) time.Duration {
		t0 := time.Now()
		for i := 0; i < clones; i++ {
			if cow {
				_ = s.CloneCOW()
			} else {
				_ = s.Clone()
			}
		}
		return time.Since(t0)
	}

	measure := func() float64 {
		best := func(d, prev time.Duration) time.Duration {
			if prev == 0 || d < prev {
				return d
			}
			return prev
		}
		var deep, cow time.Duration
		run(false) // warmup
		run(true)
		for r := 0; r < rounds; r++ {
			deep = best(run(false), deep)
			cow = best(run(true), cow)
		}
		return float64(deep) / float64(cow)
	}

	speedup := 0.0
	for i := 0; i < b.N; i++ {
		for attempt := 0; attempt < 2; attempt++ {
			speedup = measure()
			if speedup >= target {
				break
			}
		}
	}
	allocs := testing.AllocsPerRun(10, func() { _ = s.CloneCOW() })
	b.ReportMetric(speedup, "speedup-x")
	b.ReportMetric(allocs, "clone-allocs")
	if speedup < target {
		b.Fatalf("CloneCOW is %.2fx deep Clone on a 16 MiB heap, want >= %.1fx", speedup, target)
	}
	if allocs > allocsMax {
		b.Fatalf("CloneCOW makes %.0f allocations, want O(page-table) <= %d", allocs, allocsMax)
	}
}

// BenchmarkRestoreAllocGuard proves Restore is O(dirty), not O(pages): in
// the steady-state rollback loop on a 16 MiB heap (4096 pages, 8 dirtied
// per iteration) the bytes allocated per restore must be far below the 32
// KiB page-table slice the old implementation rebuilt every time. The
// journal replays 16 slots, the table and mmap map are reused in place,
// and the freelist recycles the COW copies, so the remaining allocations
// are amortized journal growth.
func BenchmarkRestoreAllocGuard(b *testing.B) {
	const (
		dirtyPages  = 8
		iters       = 512
		maxBytesPer = 4096.0
	)
	s, base := benchSpace(b, 16<<20)
	snap := s.Snapshot()
	defer snap.Release()
	loop := func(n int) {
		for i := 0; i < n; i++ {
			for pg := 0; pg < dirtyPages; pg++ {
				s.WriteU32(base+Addr(pg*PageSize), uint32(i))
			}
			s.Restore(snap)
		}
	}
	loop(32) // reach the freelist/journal steady state

	bytesPer := 0.0
	for i := 0; i < b.N; i++ {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		loop(iters)
		runtime.ReadMemStats(&after)
		bytesPer = float64(after.TotalAlloc-before.TotalAlloc) / iters
	}
	b.ReportMetric(bytesPer, "B/restore")
	if bytesPer > maxBytesPer {
		b.Fatalf("steady-state Restore allocates %.0f B/op on a 16 MiB heap, want O(dirty) <= %.0f", bytesPer, maxBytesPer)
	}
}
