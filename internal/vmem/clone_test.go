package vmem

import (
	"sync"
	"testing"
)

func TestCloneDeepCopies(t *testing.T) {
	s := New(1 << 22)
	base, _ := s.Sbrk(4 * PageSize)
	s.Write(base, []byte("shared past"))

	c := s.Clone()
	if c.Brk() != s.Brk() {
		t.Fatal("brk differs")
	}
	got, err := c.Read(base, 11)
	if err != nil || string(got) != "shared past" {
		t.Fatalf("clone contents: %q, %v", got, err)
	}

	// Divergent futures.
	s.Write(base, []byte("original!!!"))
	c.Write(base+PageSize, []byte("clone only"))
	if g, _ := c.Read(base, 11); string(g) != "shared past" {
		t.Fatalf("clone saw original's write: %q", g)
	}
	if g, _ := s.Read(base+PageSize, 10); string(g) == "clone only" {
		t.Fatal("original saw clone's write")
	}
	// Independent growth.
	if _, err := c.Sbrk(PageSize); err != nil {
		t.Fatal(err)
	}
	if s.Brk() == c.Brk() {
		t.Fatal("growth not independent")
	}
}

func TestCloneIsConcurrencySafe(t *testing.T) {
	s := New(1 << 22)
	base, _ := s.Sbrk(16 * PageSize)
	s.Fill(base, 0xAA, 16*PageSize)
	c := s.Clone()

	// Hammer both spaces from different goroutines: with deep-copied
	// pages there is no shared mutable state, so the race detector must
	// stay quiet.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Write(base+Addr(i%(15*PageSize)), []byte{byte(i)})
			snap := s.Snapshot()
			s.Restore(snap)
			snap.Release()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c.Write(base+Addr(i%(15*PageSize)), []byte{byte(i + 1)})
			snap := c.Snapshot()
			c.Restore(snap)
			snap.Release()
		}
	}()
	wg.Wait()
}

// TestCloneKeepsBudget is the regression test for the Clone bug this PR
// fixes: the cloned Space dropped budget (and everMapd), so the very first
// Map in a validation clone failed with ErrOutOfMemory even though the
// parent had hundreds of megabytes of headroom.
func TestCloneKeepsBudget(t *testing.T) {
	s := New(64 << 20)
	if _, err := s.Sbrk(4 * PageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Map(1 << 20); err != nil {
		t.Fatalf("Map in parent: %v", err)
	}
	for name, c := range map[string]*Space{"deep": s.Clone(), "cow": s.CloneCOW()} {
		a, err := c.Map(8 << 20) // a large block, well within the budget
		if err != nil {
			t.Fatalf("%s clone: Map(8 MiB) = %v, budget was dropped", name, err)
		}
		if err := c.Fill(a, 0x5A, 8<<20); err != nil {
			t.Fatalf("%s clone: mapped block unusable: %v", name, err)
		}
		if c.EverMapped() < s.EverMapped() {
			t.Fatalf("%s clone: everMapd %d < parent %d", name, c.EverMapped(), s.EverMapped())
		}
	}
}

func TestCloneCOWIsolation(t *testing.T) {
	s := New(1 << 22)
	base, _ := s.Sbrk(4 * PageSize)
	s.Write(base, []byte("shared past"))

	c := s.CloneCOW()
	got, err := c.Read(base, 11)
	if err != nil || string(got) != "shared past" {
		t.Fatalf("clone contents: %q, %v", got, err)
	}

	// Divergent futures: each side COWs its own copy.
	s.Write(base, []byte("original!!!"))
	c.Write(base+PageSize, []byte("clone only"))
	if g, _ := c.Read(base, 11); string(g) != "shared past" {
		t.Fatalf("clone saw original's write: %q", g)
	}
	if g, _ := s.Read(base+PageSize, 10); string(g) == "clone only" {
		t.Fatal("original saw clone's write")
	}
	if g, _ := s.Read(base, 11); string(g) != "original!!!" {
		t.Fatalf("original lost its own write: %q", g)
	}
}

// TestCloneCOWDoesNotPerturbDirtyAccounting pins the determinism property
// the supervisor depends on: COW copies forced purely by a clone's shared
// pages are not counted as dirty pages (and the checkpoint interval, which
// feeds on the dirty rate, therefore cannot depend on validation-goroutine
// lifetime).
func TestCloneCOWDoesNotPerturbDirtyAccounting(t *testing.T) {
	run := func(clone bool) uint64 {
		s := New(1 << 22)
		base, _ := s.Sbrk(16 * PageSize)
		snap := s.Snapshot()
		defer snap.Release()
		s.TakeDirty()
		if clone {
			_ = s.CloneCOW()
		}
		for pg := 0; pg < 8; pg++ {
			s.WriteU32(base+Addr(pg*PageSize), 1)
		}
		return s.TakeDirty()
	}
	without, with := run(false), run(true)
	if without != with {
		t.Fatalf("dirty count depends on a live clone: %d without, %d with", without, with)
	}
	if without != 8 {
		t.Fatalf("dirty count = %d, want 8", without)
	}
}

// TestCOWCloneStress is the -race stress test for the COW protocol: N
// clones write into shared pages (and snapshot/restore on their own) while
// the parent dirties the same pages and cycles snapshots. Every space must
// end with exactly the bytes it wrote.
func TestCOWCloneStress(t *testing.T) {
	const (
		clones = 4
		pages  = 32
		iters  = 1500
	)
	s := New(1 << 22)
	base, _ := s.Sbrk(pages * PageSize)
	s.Fill(base, 0xEE, pages*PageSize)

	work := make([]*Space, clones)
	for i := range work {
		work[i] = s.CloneCOW()
	}

	var wg sync.WaitGroup
	for i, c := range work {
		wg.Add(1)
		go func(id byte, c *Space) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := base + Addr(i%pages)*PageSize + Addr(4*(int(id)+1))
				c.WriteU32(a, uint32(id)<<24|uint32(i))
				if i%64 == 0 {
					snap := c.Snapshot()
					c.WriteU32(a, 0xDDDDDDDD)
					c.Restore(snap)
					snap.Release()
				}
				if v, err := c.ReadU32(a); err != nil || v != uint32(id)<<24|uint32(i) {
					t.Errorf("clone %d: read back %#x, %v", id, v, err)
					return
				}
			}
		}(byte(i), c)
	}
	// The parent cycles snapshots and restores while the clones run.
	for i := 0; i < iters; i++ {
		snap := s.Snapshot()
		s.WriteU32(base+Addr(i%pages)*PageSize, uint32(i))
		if i%3 == 0 {
			s.Restore(snap)
		}
		snap.Release()
	}
	wg.Wait()
	for i := 0; i < pages; i++ {
		if v, err := s.ReadU32(base + Addr(i)*PageSize + 2048); err != nil || v != 0xEEEEEEEE {
			t.Fatalf("parent page %d tail: %#x, %v (clone write leaked)", i, v, err)
		}
	}
}
