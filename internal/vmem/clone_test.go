package vmem

import (
	"sync"
	"testing"
)

func TestCloneDeepCopies(t *testing.T) {
	s := New(1 << 22)
	base, _ := s.Sbrk(4 * PageSize)
	s.Write(base, []byte("shared past"))

	c := s.Clone()
	if c.Brk() != s.Brk() {
		t.Fatal("brk differs")
	}
	got, err := c.Read(base, 11)
	if err != nil || string(got) != "shared past" {
		t.Fatalf("clone contents: %q, %v", got, err)
	}

	// Divergent futures.
	s.Write(base, []byte("original!!!"))
	c.Write(base+PageSize, []byte("clone only"))
	if g, _ := c.Read(base, 11); string(g) != "shared past" {
		t.Fatalf("clone saw original's write: %q", g)
	}
	if g, _ := s.Read(base+PageSize, 10); string(g) == "clone only" {
		t.Fatal("original saw clone's write")
	}
	// Independent growth.
	if _, err := c.Sbrk(PageSize); err != nil {
		t.Fatal(err)
	}
	if s.Brk() == c.Brk() {
		t.Fatal("growth not independent")
	}
}

func TestCloneIsConcurrencySafe(t *testing.T) {
	s := New(1 << 22)
	base, _ := s.Sbrk(16 * PageSize)
	s.Fill(base, 0xAA, 16*PageSize)
	c := s.Clone()

	// Hammer both spaces from different goroutines: with deep-copied
	// pages there is no shared mutable state, so the race detector must
	// stay quiet.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s.Write(base+Addr(i%(15*PageSize)), []byte{byte(i)})
			snap := s.Snapshot()
			s.Restore(snap)
			snap.Release()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			c.Write(base+Addr(i%(15*PageSize)), []byte{byte(i + 1)})
			snap := c.Snapshot()
			c.Restore(snap)
			snap.Release()
		}
	}()
	wg.Wait()
}
