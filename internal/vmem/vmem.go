// Package vmem implements a paged 32-bit virtual address space with
// copy-on-write snapshots.
//
// It is the machine substrate for the First-Aid reproduction: the simulated
// heap allocator (package heap) obtains memory from a Space via Sbrk, every
// simulated load and store is checked against the page table (touching an
// unmapped page raises an access-violation fault, as a hardware MMU would),
// and the checkpointing layer (package checkpoint) takes snapshots whose
// cost is proportional to the number of pages dirtied since the previous
// snapshot — exactly the fork/COW behaviour of the Flashback kernel module
// used by the paper.
package vmem

import (
	"errors"
	"fmt"

	"firstaid/internal/trace"
)

// Addr is a virtual address in a Space. The address space is 32-bit, which
// comfortably holds every simulated workload while keeping snapshots small.
type Addr = uint32

// PageSize is the size of a virtual page in bytes. It matches the x86 page
// size used by the paper's testbed so that COW page counts are comparable.
const PageSize = 4096

const pageShift = 12

// HeapBase is the address at which Sbrk-managed memory begins. Address 0 is
// kept unmapped so that nil-pointer dereferences fault, and a guard region
// below HeapBase catches large negative offsets.
const HeapBase Addr = 0x0001_0000

// Fault kinds reported by Space operations.
var (
	// ErrUnmapped is returned when an access touches a page that has
	// never been mapped (beyond the break, or in the guard region).
	ErrUnmapped = errors.New("vmem: access to unmapped page")
	// ErrOutOfMemory is returned by Sbrk when the requested growth would
	// exceed the configured limit.
	ErrOutOfMemory = errors.New("vmem: out of memory")
)

// AccessError describes a faulting memory access. It unwraps to ErrUnmapped
// so callers can match with errors.Is.
type AccessError struct {
	Addr  Addr
	Len   int
	Write bool
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vmem: %s of %d bytes at %#x touches unmapped page", kind, e.Len, e.Addr)
}

// Unwrap reports the underlying sentinel so errors.Is(err, ErrUnmapped) works.
func (e *AccessError) Unwrap() error { return ErrUnmapped }

// page is a unit of COW sharing. refs counts how many page tables (the live
// Space plus outstanding Snapshots) reference the data; a write through a
// page with refs > 1 first copies it.
type page struct {
	data []byte
	refs int32
}

// MmapBase is the address at which Map-managed regions begin. The break
// may grow at most to here; large allocations live above. 32 MiB of sbrk
// zone is ample once the allocator diverts big blocks to Map.
const MmapBase Addr = 0x0200_0000

// Space is a virtual address space. It is not safe for concurrent use; the
// simulated machine is single-threaded, as were the paper's per-process
// runtimes.
type Space struct {
	pages    []*page // indexed by page number; nil entries are unmapped
	brk      Addr    // current program break (end of mapped heap)
	limit    Addr    // maximum break
	dirty    uint64  // pages copied (COW faults) since last TakeDirty
	everMapd uint64  // total pages ever mapped, for stats

	mmapCursor Addr            // next Map placement
	mmaps      map[Addr]uint32 // live Map regions: start → length (bytes)
	mmapBytes  uint64          // total bytes currently mapped via Map
	budget     uint64          // total memory budget (sbrk + Map)

	trc trace.Emitter // execution tracer; the zero Emitter discards
}

// SetTracer wires the space to an execution-trace emitter (the zero
// Emitter detaches): faulting accesses, COW page copies and the page
// counts of snapshot/restore become trace records. Clone does not carry
// the emitter over — a cloned space is re-wired by its machine so the
// records land on the clone's own track.
func (s *Space) SetTracer(em trace.Emitter) { s.trc = em }

// faultAccess records a faulting access and returns its AccessError.
func (s *Space) faultAccess(a Addr, n int, write bool) *AccessError {
	arg2 := uint64(n)
	if write {
		arg2 |= 1 << 63
	}
	s.trc.Emit(trace.KPageFault, uint64(a), arg2)
	return &AccessError{Addr: a, Len: n, Write: write}
}

// New creates an empty Space whose break starts at HeapBase and may grow to
// at most limit bytes of mapped heap (0 means the full 32-bit space).
func New(limit uint32) *Space {
	if limit == 0 {
		limit = 0xFFFF_F000
	}
	lim := uint64(HeapBase) + uint64(limit)
	if lim > uint64(MmapBase) {
		lim = uint64(MmapBase)
	}
	return &Space{
		brk:        HeapBase,
		limit:      Addr(lim),
		mmapCursor: MmapBase,
		mmaps:      make(map[Addr]uint32),
		budget:     uint64(limit),
	}
}

// Brk returns the current program break.
func (s *Space) Brk() Addr { return s.brk }

// MappedBytes returns the number of bytes between HeapBase and the break.
func (s *Space) MappedBytes() uint64 { return uint64(s.brk - HeapBase) }

// Sbrk grows the mapped region by n bytes (rounded up to whole pages) and
// returns the previous break, which is the start of the new region. New
// pages are zero-filled, as the OS would deliver them.
func (s *Space) Sbrk(n uint32) (Addr, error) {
	old := s.brk
	if n == 0 {
		return old, nil
	}
	end := uint64(old) + uint64(n)
	if end > uint64(s.limit) {
		return 0, ErrOutOfMemory
	}
	newBrk := Addr(end)
	firstPage := pageNum(old)
	lastPage := pageNum(newBrk - 1)
	if need := int(lastPage) + 1; need > len(s.pages) {
		grown := make([]*page, need)
		copy(grown, s.pages)
		s.pages = grown
	}
	for pn := firstPage; pn <= lastPage; pn++ {
		if s.pages[pn] == nil {
			s.pages[pn] = &page{data: make([]byte, PageSize), refs: 1}
			s.everMapd++
		}
	}
	s.brk = newBrk
	return old, nil
}

func pageNum(a Addr) uint32 { return uint32(a) >> pageShift }

// mapped reports whether the range [a, a+n) lies entirely within mapped
// memory: below the break in the sbrk zone (strict, so stray accesses past
// the break fault even within the break's final page), page-presence in
// the Map zone.
func (s *Space) mapped(a Addr, n int) bool {
	if n <= 0 {
		return n == 0
	}
	end := uint64(a) + uint64(n)
	if a < HeapBase || end > 0xFFFF_FFFF {
		return false
	}
	if a < MmapBase && end > uint64(s.brk) {
		return false
	}
	for pn := pageNum(a); pn <= pageNum(Addr(end-1)); pn++ {
		if int(pn) >= len(s.pages) || s.pages[pn] == nil {
			return false
		}
	}
	return true
}

// --- Map / Unmap (the mmap(2) analogue) -----------------------------------------

// MapError describes a failed Map/Unmap operation.
var ErrBadUnmap = errors.New("vmem: unmap of address that is not a mapping start")

// Map allocates a fresh page-aligned region of at least n bytes in the Map
// zone, zero-filled, with an unmapped guard page after it (so overruns
// fault immediately, as they do past a real mmap region). It is the
// allocator's backend for large objects, dlmalloc's mmap path.
func (s *Space) Map(n uint32) (Addr, error) {
	if n == 0 {
		n = 1
	}
	length := (n + PageSize - 1) &^ (PageSize - 1)
	start := s.mmapCursor
	end := uint64(start) + uint64(length)
	if end+PageSize > 0xFFFF_F000 {
		return 0, ErrOutOfMemory
	}
	// The budget covers sbrk and Map zones together.
	if s.MappedBytes()+s.mmapBytes+uint64(length) > s.budget {
		return 0, ErrOutOfMemory
	}
	firstPage := pageNum(start)
	lastPage := pageNum(Addr(end - 1))
	if need := int(lastPage) + 1; need > len(s.pages) {
		grown := make([]*page, need)
		copy(grown, s.pages)
		s.pages = grown
	}
	for pn := firstPage; pn <= lastPage; pn++ {
		s.pages[pn] = &page{data: make([]byte, PageSize), refs: 1}
		s.everMapd++
	}
	s.mmapCursor = Addr(end) + PageSize // skip a guard page
	s.mmaps[start] = length
	s.mmapBytes += uint64(length)
	return start, nil
}

// Unmap releases a region returned by Map. Subsequent accesses fault — the
// immediate-SIGSEGV use-after-free behaviour of munmapped memory.
func (s *Space) Unmap(start Addr) error {
	length, ok := s.mmaps[start]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadUnmap, start)
	}
	for pn := pageNum(start); pn <= pageNum(start+length-1); pn++ {
		if p := s.pages[pn]; p != nil {
			p.refs--
			s.pages[pn] = nil
		}
	}
	delete(s.mmaps, start)
	s.mmapBytes -= uint64(length)
	return nil
}

// MappedRegion reports whether start is a live Map region and its length.
func (s *Space) MappedRegion(start Addr) (uint32, bool) {
	n, ok := s.mmaps[start]
	return n, ok
}

// MmapBytes returns the bytes currently held by Map regions.
func (s *Space) MmapBytes() uint64 { return s.mmapBytes }

// Read copies n bytes starting at a into a fresh slice.
func (s *Space) Read(a Addr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.ReadInto(a, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto fills buf with the bytes starting at a.
func (s *Space) ReadInto(a Addr, buf []byte) error {
	if !s.mapped(a, len(buf)) {
		return s.faultAccess(a, len(buf), false)
	}
	off := 0
	for off < len(buf) {
		pn := pageNum(a + Addr(off))
		po := int(a+Addr(off)) & (PageSize - 1)
		n := copy(buf[off:], s.pages[pn].data[po:])
		off += n
	}
	return nil
}

// writablePage returns the page's data ready for mutation, performing the
// copy-on-write if the page is shared with a snapshot.
func (s *Space) writablePage(pn uint32) []byte {
	p := s.pages[pn]
	if p.refs > 1 {
		cp := &page{data: append([]byte(nil), p.data...), refs: 1}
		p.refs--
		s.pages[pn] = cp
		s.dirty++
		s.trc.Emit(trace.KCOWCopy, uint64(pn), 0)
		return cp.data
	}
	return p.data
}

// Write stores data at address a.
func (s *Space) Write(a Addr, data []byte) error {
	if !s.mapped(a, len(data)) {
		return s.faultAccess(a, len(data), true)
	}
	off := 0
	for off < len(data) {
		cur := a + Addr(off)
		pn := pageNum(cur)
		po := int(cur) & (PageSize - 1)
		n := copy(s.writablePage(pn)[po:], data[off:])
		off += n
	}
	return nil
}

// Fill writes n copies of byte b starting at address a.
func (s *Space) Fill(a Addr, b byte, n int) error {
	if !s.mapped(a, n) {
		return s.faultAccess(a, n, true)
	}
	off := 0
	for off < n {
		cur := a + Addr(off)
		pn := pageNum(cur)
		po := int(cur) & (PageSize - 1)
		data := s.writablePage(pn)[po:]
		span := len(data)
		if span > n-off {
			span = n - off
		}
		for i := 0; i < span; i++ {
			data[i] = b
		}
		off += span
	}
	return nil
}

// ReadU32 loads a little-endian 32-bit word.
func (s *Space) ReadU32(a Addr) (uint32, error) {
	var buf [4]byte
	if err := s.ReadInto(a, buf[:]); err != nil {
		return 0, err
	}
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
}

// WriteU32 stores a little-endian 32-bit word.
func (s *Space) WriteU32(a Addr, v uint32) error {
	buf := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return s.Write(a, buf[:])
}

// TakeDirty returns the number of COW page copies performed since the last
// call and resets the counter. The checkpoint manager uses this as the COW
// page rate that drives the adaptive checkpointing interval (paper §3).
func (s *Space) TakeDirty() uint64 {
	d := s.dirty
	s.dirty = 0
	return d
}

// DirtyPages returns the COW copy count without resetting it.
func (s *Space) DirtyPages() uint64 { return s.dirty }

// Clone returns a fully independent deep copy of the Space: every mapped
// page is duplicated, so the clone can be handed to another goroutine (the
// paper's parallel patch validation runs "on a different processor core
// based on a snapshot of the program"). Clone must be called while no other
// goroutine is using the Space.
func (s *Space) Clone() *Space {
	cp := &Space{
		pages:      make([]*page, len(s.pages)),
		brk:        s.brk,
		limit:      s.limit,
		mmapCursor: s.mmapCursor,
		mmaps:      make(map[Addr]uint32, len(s.mmaps)),
		mmapBytes:  s.mmapBytes,
	}
	for i, p := range s.pages {
		if p != nil {
			cp.pages[i] = &page{data: append([]byte(nil), p.data...), refs: 1}
		}
	}
	for k, v := range s.mmaps {
		cp.mmaps[k] = v
	}
	return cp
}

// Snapshot captures the current contents of the Space. Taking a snapshot is
// O(pages) pointer work; page data is shared copy-on-write, so the memory
// cost of holding a snapshot is the number of pages subsequently dirtied —
// the quantity reported in Table 7 of the paper.
type Snapshot struct {
	pages      []*page
	brk        Addr
	mmapCursor Addr
	mmaps      map[Addr]uint32
	mmapBytes  uint64
}

// Snapshot records the current state for a later Restore.
func (s *Space) Snapshot() *Snapshot {
	pages := make([]*page, len(s.pages))
	copy(pages, s.pages)
	var captured uint64
	for _, p := range pages {
		if p != nil {
			p.refs++
			captured++
		}
	}
	s.trc.Emit(trace.KSnapshot, captured, 0)
	mmaps := make(map[Addr]uint32, len(s.mmaps))
	for k, v := range s.mmaps {
		mmaps[k] = v
	}
	return &Snapshot{
		pages:      pages,
		brk:        s.brk,
		mmapCursor: s.mmapCursor,
		mmaps:      mmaps,
		mmapBytes:  s.mmapBytes,
	}
}

// Restore rewinds the Space to the snapshot's state. The snapshot remains
// valid and may be restored again (diagnosis rolls back to the same
// checkpoint many times).
func (s *Space) Restore(snap *Snapshot) {
	for _, p := range s.pages {
		if p != nil {
			p.refs--
		}
	}
	s.pages = make([]*page, len(snap.pages))
	copy(s.pages, snap.pages)
	var restored uint64
	for _, p := range s.pages {
		if p != nil {
			p.refs++
			restored++
		}
	}
	s.trc.Emit(trace.KRestore, restored, 0)
	s.brk = snap.brk
	s.mmapCursor = snap.mmapCursor
	s.mmapBytes = snap.mmapBytes
	s.mmaps = make(map[Addr]uint32, len(snap.mmaps))
	for k, v := range snap.mmaps {
		s.mmaps[k] = v
	}
}

// Release drops the snapshot's references so its pages can be collected.
// The snapshot must not be used afterwards.
func (snap *Snapshot) Release() {
	for _, p := range snap.pages {
		if p != nil {
			p.refs--
		}
	}
	snap.pages = nil
}

// Bytes returns the number of bytes of heap captured by the snapshot.
func (snap *Snapshot) Bytes() uint64 { return uint64(snap.brk - HeapBase) }

// UniqueBytes returns the number of bytes held by pages that are, at call
// time, referenced only through snapshots (refs recorded at snapshot time
// is not tracked per holder; this reports pages*PageSize as an upper bound
// for accounting displays).
func (snap *Snapshot) UniqueBytes() uint64 {
	var n uint64
	for _, p := range snap.pages {
		if p != nil {
			n += PageSize
		}
	}
	return n
}
