// Package vmem implements a paged 32-bit virtual address space with
// copy-on-write snapshots.
//
// It is the machine substrate for the First-Aid reproduction: the simulated
// heap allocator (package heap) obtains memory from a Space via Sbrk, every
// simulated load and store is checked against the page table (touching an
// unmapped page raises an access-violation fault, as a hardware MMU would),
// and the checkpointing layer (package checkpoint) takes snapshots whose
// cost is proportional to the number of pages dirtied since the previous
// snapshot — exactly the fork/COW behaviour of the Flashback kernel module
// used by the paper.
//
// # Fast paths
//
// The Space is the hot path under every boundary-tag operation of the
// allocator, so the word accessors are engineered like a software MMU:
//
//   - a micro-TLB caches the last translation (page number → exclusively
//     owned, writable page data), so an aligned ReadU32/WriteU32 on an
//     already-writable page is a bounds check and a direct 4-byte
//     load/store — no mapped() range scan, no per-byte loop;
//   - page reference counts are atomic, which makes CloneCOW possible: a
//     clone shares every page with its parent and copies only on write, so
//     handing a machine snapshot to a validation goroutine is O(page-table
//     pointers) instead of O(heap bytes);
//   - Restore is O(pages changed since the snapshot): an append-only slot
//     journal records every page-table mutation while snapshots are live,
//     and Restore replays only the journal tail, reusing the existing page
//     table and mmap map instead of reallocating them;
//   - a small page freelist recycles page frames whose refcount hits zero,
//     so the COW copies of a diagnose/rollback loop stop hammering the Go
//     allocator.
package vmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"

	"firstaid/internal/trace"
)

// Addr is a virtual address in a Space. The address space is 32-bit, which
// comfortably holds every simulated workload while keeping snapshots small.
type Addr = uint32

// PageSize is the size of a virtual page in bytes. It matches the x86 page
// size used by the paper's testbed so that COW page counts are comparable.
const PageSize = 4096

const pageShift = 12

// HeapBase is the address at which Sbrk-managed memory begins. Address 0 is
// kept unmapped so that nil-pointer dereferences fault, and a guard region
// below HeapBase catches large negative offsets.
const HeapBase Addr = 0x0001_0000

// Fault kinds reported by Space operations.
var (
	// ErrUnmapped is returned when an access touches a page that has
	// never been mapped (beyond the break, or in the guard region).
	ErrUnmapped = errors.New("vmem: access to unmapped page")
	// ErrOutOfMemory is returned by Sbrk when the requested growth would
	// exceed the configured limit.
	ErrOutOfMemory = errors.New("vmem: out of memory")
)

// AccessError describes a faulting memory access. It unwraps to ErrUnmapped
// so callers can match with errors.Is.
type AccessError struct {
	Addr  Addr
	Len   int
	Write bool
}

func (e *AccessError) Error() string {
	kind := "read"
	if e.Write {
		kind = "write"
	}
	return fmt.Sprintf("vmem: %s of %d bytes at %#x touches unmapped page", kind, e.Len, e.Addr)
}

// Unwrap reports the underlying sentinel so errors.Is(err, ErrUnmapped) works.
func (e *AccessError) Unwrap() error { return ErrUnmapped }

// page is a unit of COW sharing. refs counts how many page tables (live
// Spaces plus outstanding Snapshots) reference the data; a write through a
// page with refs > 1 first copies it.
//
// refs is atomic because pages are shared across Spaces by CloneCOW: the
// parent machine and its validation clones COW-fault on the same pages from
// different goroutines. The COW protocol keeps that race-clean: a copier
// finishes reading p.data BEFORE dropping its reference, and a writer
// mutates p.data in place only after observing refs == 1 — the atomic
// decrement/load pair orders the copy's reads before the in-place writes.
type page struct {
	data []byte
	refs atomic.Int32
}

// MmapBase is the address at which Map-managed regions begin. The break
// may grow at most to here; large allocations live above. 32 MiB of sbrk
// zone is ample once the allocator diverts big blocks to Map.
const MmapBase Addr = 0x0200_0000

// freelistCap bounds the per-Space page freelist (256 frames = 1 MiB).
// Frames beyond the cap fall back to the garbage collector.
const freelistCap = 256

// Space is a virtual address space. It is not safe for concurrent use; the
// simulated machine is single-threaded, as were the paper's per-process
// runtimes. Distinct Spaces that share pages via CloneCOW may run on
// different goroutines concurrently.
type Space struct {
	pages    []*page // indexed by page number; nil entries are unmapped
	brk      Addr    // current program break (end of mapped heap)
	limit    Addr    // maximum break
	dirty    uint64  // pages copied (COW faults) since last TakeDirty
	everMapd uint64  // total pages ever mapped, for stats

	// Micro-TLB: the last translated page whose frame this Space owns
	// exclusively (refs == 1 at fill time). A hit lets WriteU32 store
	// directly without the refcount check or COW test; any operation
	// that shares pages or rewrites page-table slots invalidates it by
	// nilling tlbData.
	tlbPage uint32
	tlbData []byte

	// slow disables the word fast paths and the TLB, forcing every access
	// through the original byte-assembly route. The chaos differential
	// tests flip this to prove the fast paths change no semantics.
	slow bool

	// snaps tracks this Space's live (unreleased) snapshots; journal is
	// the append-only log of page-table slots mutated while any snapshot
	// is live. Restore replays journal[snap.pos:] instead of rebuilding
	// the whole table. The journal resets when the last snapshot is
	// released and compacts as old snapshots go away.
	snaps   []*Snapshot
	journal []uint32

	// free recycles page frames whose refcount reached zero; COW copies
	// reuse them as-is, Sbrk/Map reuse them after zeroing.
	free [][]byte

	mmapCursor Addr            // next Map placement
	mmaps      map[Addr]uint32 // live Map regions: start → length (bytes)
	mmapBytes  uint64          // total bytes currently mapped via Map
	budget     uint64          // total memory budget (sbrk + Map)

	// mmapEpoch changes on every Map/Unmap; a snapshot records it so
	// Restore can skip rebuilding the mmaps table when it never changed.
	// mmapSeq is the monotonic generator (never rewound by Restore, so a
	// reused epoch value always denotes the same table contents).
	mmapEpoch uint64
	mmapSeq   uint64

	trc trace.Emitter // execution tracer; the zero Emitter discards
}

// SetTracer wires the space to an execution-trace emitter (the zero
// Emitter detaches): faulting accesses, COW page copies and the page
// counts of snapshot/restore become trace records. Clone does not carry
// the emitter over — a cloned space is re-wired by its machine so the
// records land on the clone's own track.
func (s *Space) SetTracer(em trace.Emitter) { s.trc = em }

// SetFastPaths enables or disables the micro-TLB and aligned-word fast
// paths (enabled by default). Disabling routes every access through the
// original general path; the chaos cross-check runs both configurations
// and asserts byte-identical outcomes.
func (s *Space) SetFastPaths(on bool) {
	s.slow = !on
	s.tlbData = nil
}

// faultAccess records a faulting access and returns its AccessError.
func (s *Space) faultAccess(a Addr, n int, write bool) *AccessError {
	arg2 := uint64(n)
	if write {
		arg2 |= 1 << 63
	}
	s.trc.Emit(trace.KPageFault, uint64(a), arg2)
	return &AccessError{Addr: a, Len: n, Write: write}
}

// New creates an empty Space whose break starts at HeapBase and may grow to
// at most limit bytes of mapped heap (0 means the full 32-bit space).
func New(limit uint32) *Space {
	if limit == 0 {
		limit = 0xFFFF_F000
	}
	lim := uint64(HeapBase) + uint64(limit)
	if lim > uint64(MmapBase) {
		lim = uint64(MmapBase)
	}
	return &Space{
		brk:        HeapBase,
		limit:      Addr(lim),
		mmapCursor: MmapBase,
		mmaps:      make(map[Addr]uint32),
		budget:     uint64(limit),
	}
}

// Brk returns the current program break.
func (s *Space) Brk() Addr { return s.brk }

// MappedBytes returns the number of bytes between HeapBase and the break.
func (s *Space) MappedBytes() uint64 { return uint64(s.brk - HeapBase) }

// EverMapped returns the total number of pages this space has ever mapped.
func (s *Space) EverMapped() uint64 { return s.everMapd }

// --- page-frame and journal plumbing ---------------------------------------------

// newPage returns a fresh page, recycling a freelist frame when possible.
// Sbrk/Map pass zero=true (the OS delivers zero-filled pages); the COW copy
// path passes zero=false because it overwrites the whole frame anyway.
func (s *Space) newPage(zero bool) *page {
	p := &page{}
	if n := len(s.free); n > 0 {
		d := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		if zero {
			clear(d)
		}
		p.data = d
	} else {
		p.data = make([]byte, PageSize)
	}
	p.refs.Store(1)
	return p
}

// decref drops one reference to p, recycling the frame once nobody holds it.
// Safe against concurrent decrefs from sibling Spaces: only the holder that
// observes the count hit zero recycles, and the atomic RMW orders every
// earlier reader's loads before the recycler's stores.
func (s *Space) decref(p *page) {
	if p.refs.Add(-1) == 0 {
		if len(s.free) < freelistCap {
			s.free = append(s.free, p.data)
		}
		p.data = nil
	}
}

// noteSlotChange records a page-table slot mutation for O(dirty) Restore.
// With no live snapshot there is nothing to rewind to, so the journal
// stays empty and the call is a len check.
func (s *Space) noteSlotChange(pn uint32) {
	if len(s.snaps) > 0 {
		s.journal = append(s.journal, pn)
	}
}

// sharedWithOwnSnapshot reports whether one of this Space's live snapshots
// still references page p at slot pn. This is the dirty-accounting rule: a
// COW fault counts as a dirtied page (and is traced) only when the copy
// preserves checkpoint state — copies forced purely by a foreign CloneCOW
// sharer are bookkeeping, not checkpoint retention, and counting them
// would make COW statistics depend on validation-goroutine timing.
func (s *Space) sharedWithOwnSnapshot(pn uint32, p *page) bool {
	for _, sn := range s.snaps {
		if int(pn) < len(sn.pages) && sn.pages[pn] == p {
			return true
		}
	}
	return false
}

// Sbrk grows the mapped region by n bytes (rounded up to whole pages) and
// returns the previous break, which is the start of the new region. New
// pages are zero-filled, as the OS would deliver them.
func (s *Space) Sbrk(n uint32) (Addr, error) {
	old := s.brk
	if n == 0 {
		return old, nil
	}
	end := uint64(old) + uint64(n)
	if end > uint64(s.limit) {
		return 0, ErrOutOfMemory
	}
	newBrk := Addr(end)
	firstPage := pageNum(old)
	lastPage := pageNum(newBrk - 1)
	s.growPages(int(lastPage) + 1)
	for pn := firstPage; pn <= lastPage; pn++ {
		if s.pages[pn] == nil {
			s.pages[pn] = s.newPage(true)
			s.everMapd++
			s.noteSlotChange(pn)
		}
	}
	s.brk = newBrk
	s.tlbData = nil
	return old, nil
}

func pageNum(a Addr) uint32 { return uint32(a) >> pageShift }

// growPages extends the page table to hold need slots. The table length
// tracks the highest mapped page exactly (Snapshot and clone depend on
// that), but growth reserves doubling spare capacity: the Map zone's
// cursor only ever moves forward, so exact-size reallocation would copy
// the entire table on every mapping.
func (s *Space) growPages(need int) {
	if need <= len(s.pages) {
		return
	}
	if need <= cap(s.pages) {
		s.pages = s.pages[:need]
		return
	}
	c := 2 * cap(s.pages)
	if c < need {
		// A jump past doubling (the first Map zone mapping crossing from
		// the brk span to MmapBase's page) still reserves headroom, or the
		// very next mapping would reallocate the whole table again.
		c = need + need/4
	}
	grown := make([]*page, need, c)
	copy(grown, s.pages)
	s.pages = grown
}

// mapped reports whether the range [a, a+n) lies entirely within mapped
// memory: below the break in the sbrk zone (strict, so stray accesses past
// the break fault even within the break's final page), page-presence in
// the Map zone.
func (s *Space) mapped(a Addr, n int) bool {
	if n <= 0 {
		return n == 0
	}
	end := uint64(a) + uint64(n)
	if a < HeapBase || end > 0xFFFF_FFFF {
		return false
	}
	if a < MmapBase && end > uint64(s.brk) {
		return false
	}
	for pn := pageNum(a); pn <= pageNum(Addr(end-1)); pn++ {
		if int(pn) >= len(s.pages) || s.pages[pn] == nil {
			return false
		}
	}
	return true
}

// wordMapped is the aligned-word form of mapped: a 4-byte access at an
// aligned address lies within one page, so the per-page scan collapses to
// the zone bounds check here plus a single slot probe at the call site.
// (In the Map zone page presence alone decides: guard pages and unmapped
// regions have nil slots, and the top-of-space guard is never mapped.)
func (s *Space) wordMapped(a Addr) bool {
	return a >= MmapBase || (a >= HeapBase && a+4 <= s.brk)
}

// --- Map / Unmap (the mmap(2) analogue) -----------------------------------------

// MapError describes a failed Map/Unmap operation.
var ErrBadUnmap = errors.New("vmem: unmap of address that is not a mapping start")

// Map allocates a fresh page-aligned region of at least n bytes in the Map
// zone, zero-filled, with an unmapped guard page after it (so overruns
// fault immediately, as they do past a real mmap region). It is the
// allocator's backend for large objects, dlmalloc's mmap path.
func (s *Space) Map(n uint32) (Addr, error) {
	if n == 0 {
		n = 1
	}
	length := (n + PageSize - 1) &^ (PageSize - 1)
	start := s.mmapCursor
	end := uint64(start) + uint64(length)
	if end+PageSize > 0xFFFF_F000 {
		return 0, ErrOutOfMemory
	}
	// The budget covers sbrk and Map zones together.
	if s.MappedBytes()+s.mmapBytes+uint64(length) > s.budget {
		return 0, ErrOutOfMemory
	}
	firstPage := pageNum(start)
	lastPage := pageNum(Addr(end - 1))
	s.growPages(int(lastPage) + 1)
	for pn := firstPage; pn <= lastPage; pn++ {
		s.pages[pn] = s.newPage(true)
		s.everMapd++
		s.noteSlotChange(pn)
	}
	s.mmapCursor = Addr(end) + PageSize // skip a guard page
	s.mmaps[start] = length
	s.mmapBytes += uint64(length)
	s.mmapSeq++
	s.mmapEpoch = s.mmapSeq
	s.tlbData = nil
	return start, nil
}

// Unmap releases a region returned by Map. Subsequent accesses fault — the
// immediate-SIGSEGV use-after-free behaviour of munmapped memory.
func (s *Space) Unmap(start Addr) error {
	length, ok := s.mmaps[start]
	if !ok {
		return fmt.Errorf("%w: %#x", ErrBadUnmap, start)
	}
	for pn := pageNum(start); pn <= pageNum(start+length-1); pn++ {
		if p := s.pages[pn]; p != nil {
			s.pages[pn] = nil
			s.noteSlotChange(pn)
			s.decref(p)
		}
	}
	delete(s.mmaps, start)
	s.mmapBytes -= uint64(length)
	s.mmapSeq++
	s.mmapEpoch = s.mmapSeq
	s.tlbData = nil
	return nil
}

// MappedRegion reports whether start is a live Map region and its length.
func (s *Space) MappedRegion(start Addr) (uint32, bool) {
	n, ok := s.mmaps[start]
	return n, ok
}

// MmapBytes returns the bytes currently held by Map regions.
func (s *Space) MmapBytes() uint64 { return s.mmapBytes }

// Read copies n bytes starting at a into a fresh slice.
func (s *Space) Read(a Addr, n int) ([]byte, error) {
	buf := make([]byte, n)
	if err := s.ReadInto(a, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// ReadInto fills buf with the bytes starting at a.
func (s *Space) ReadInto(a Addr, buf []byte) error {
	if !s.mapped(a, len(buf)) {
		return s.faultAccess(a, len(buf), false)
	}
	off := 0
	for off < len(buf) {
		pn := pageNum(a + Addr(off))
		po := int(a+Addr(off)) & (PageSize - 1)
		n := copy(buf[off:], s.pages[pn].data[po:])
		off += n
	}
	return nil
}

// writablePage returns the page's data ready for mutation, performing the
// copy-on-write if the page is shared, and fills the micro-TLB: once this
// returns, the Space owns the frame exclusively until the next Snapshot,
// Restore, Map/Unmap, Sbrk or CloneCOW invalidates the entry.
func (s *Space) writablePage(pn uint32) []byte {
	p := s.pages[pn]
	if p.refs.Load() > 1 {
		np := s.newPage(false)
		copy(np.data, p.data)
		// The page is dirty in the checkpoint sense only if one of our
		// own snapshots retains it; see sharedWithOwnSnapshot.
		if s.sharedWithOwnSnapshot(pn, p) {
			s.dirty++
			s.trc.Emit(trace.KCOWCopy, uint64(pn), 0)
		}
		// Drop our reference only after the copy completes: a sibling
		// Space that observes refs == 1 may immediately write p.data in
		// place, and the atomic ordering makes our reads happen first.
		s.decref(p)
		s.pages[pn] = np
		s.noteSlotChange(pn)
		p = np
	}
	if !s.slow {
		s.tlbPage, s.tlbData = pn, p.data
	}
	return p.data
}

// Write stores data at address a.
func (s *Space) Write(a Addr, data []byte) error {
	if !s.mapped(a, len(data)) {
		return s.faultAccess(a, len(data), true)
	}
	off := 0
	for off < len(data) {
		cur := a + Addr(off)
		pn := pageNum(cur)
		po := int(cur) & (PageSize - 1)
		n := copy(s.writablePage(pn)[po:], data[off:])
		off += n
	}
	return nil
}

// Fill writes n copies of byte b starting at address a. The inner loop is
// chunked: zero fills use the runtime's memclr, other bytes seed the first
// byte and double the filled prefix with copy.
func (s *Space) Fill(a Addr, b byte, n int) error {
	if !s.mapped(a, n) {
		return s.faultAccess(a, n, true)
	}
	off := 0
	for off < n {
		cur := a + Addr(off)
		pn := pageNum(cur)
		po := int(cur) & (PageSize - 1)
		data := s.writablePage(pn)[po:]
		span := len(data)
		if span > n-off {
			span = n - off
		}
		chunk := data[:span]
		if b == 0 {
			clear(chunk)
		} else {
			chunk[0] = b
			for i := 1; i < span; i *= 2 {
				copy(chunk[i:], chunk[:i])
			}
		}
		off += span
	}
	return nil
}

// ReadU32 loads a little-endian 32-bit word. Aligned loads from a resident
// page — the boundary-tag case — take a direct fast path: TLB hit or one
// page-table probe, then a 4-byte load.
func (s *Space) ReadU32(a Addr) (uint32, error) {
	if a&3 == 0 && !s.slow && s.wordMapped(a) {
		pn := a >> pageShift
		if s.tlbData != nil && pn == s.tlbPage {
			return binary.LittleEndian.Uint32(s.tlbData[a&(PageSize-1):]), nil
		}
		if int(pn) < len(s.pages) {
			if p := s.pages[pn]; p != nil {
				return binary.LittleEndian.Uint32(p.data[a&(PageSize-1):]), nil
			}
		}
		return 0, s.faultAccess(a, 4, false)
	}
	return s.readU32Slow(a)
}

// readU32Slow is the original byte-assembly path (unaligned words, or fast
// paths disabled).
func (s *Space) readU32Slow(a Addr) (uint32, error) {
	var buf [4]byte
	if err := s.ReadInto(a, buf[:]); err != nil {
		return 0, err
	}
	return uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24, nil
}

// WriteU32 stores a little-endian 32-bit word. An aligned store through the
// micro-TLB is a bounds check and a direct 4-byte store; a TLB miss on a
// resident page runs the COW machinery once and caches the result.
func (s *Space) WriteU32(a Addr, v uint32) error {
	if a&3 == 0 && !s.slow && s.wordMapped(a) {
		pn := a >> pageShift
		if s.tlbData != nil && pn == s.tlbPage {
			binary.LittleEndian.PutUint32(s.tlbData[a&(PageSize-1):], v)
			return nil
		}
		if int(pn) < len(s.pages) && s.pages[pn] != nil {
			binary.LittleEndian.PutUint32(s.writablePage(pn)[a&(PageSize-1):], v)
			return nil
		}
		return s.faultAccess(a, 4, true)
	}
	return s.writeU32Slow(a, v)
}

// writeU32Slow is the original byte path (unaligned words, or fast paths
// disabled).
func (s *Space) writeU32Slow(a Addr, v uint32) error {
	buf := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return s.Write(a, buf[:])
}

// TakeDirty returns the number of COW page copies performed since the last
// call and resets the counter. The checkpoint manager uses this as the COW
// page rate that drives the adaptive checkpointing interval (paper §3).
func (s *Space) TakeDirty() uint64 {
	d := s.dirty
	s.dirty = 0
	return d
}

// DirtyPages returns the COW copy count without resetting it.
func (s *Space) DirtyPages() uint64 { return s.dirty }

// Clone returns a fully independent deep copy of the Space: every mapped
// page is duplicated, so the clone can be handed to another goroutine with
// zero sharing. CloneCOW is the cheap variant used for validation clones;
// the deep copy remains the reference implementation the differential
// tests compare against. Clone must be called while no other goroutine is
// using the Space.
func (s *Space) Clone() *Space {
	cp := s.cloneShell()
	for i, p := range s.pages {
		if p != nil {
			np := &page{data: append([]byte(nil), p.data...)}
			np.refs.Store(1)
			cp.pages[i] = np
		}
	}
	return cp
}

// CloneCOW returns an independent Space that shares every page with s
// copy-on-write: setup is O(page-table pointers) — the paper's fork-like
// snapshot — and each side copies a page the first time it writes it. The
// clone may run on another goroutine immediately (the parallel validation
// substrate). CloneCOW must be called while no other goroutine is using s.
func (s *Space) CloneCOW() *Space {
	cp := s.cloneShell()
	copy(cp.pages, s.pages)
	for _, p := range cp.pages {
		if p != nil {
			p.refs.Add(1)
		}
	}
	// Our frames are shared now: a stale TLB entry would let WriteU32
	// bypass the COW check and scribble on the clone's view.
	s.tlbData = nil
	return cp
}

// cloneShell copies every non-page field of the Space: break, limit,
// budget, stats and the mmap table. (An earlier version dropped budget and
// everMapd, so any Map in a validation clone failed with ErrOutOfMemory —
// see TestCloneKeepsBudget.)
func (s *Space) cloneShell() *Space {
	cp := &Space{
		pages:      make([]*page, len(s.pages)),
		brk:        s.brk,
		limit:      s.limit,
		everMapd:   s.everMapd,
		slow:       s.slow,
		mmapCursor: s.mmapCursor,
		mmaps:      make(map[Addr]uint32, len(s.mmaps)),
		mmapBytes:  s.mmapBytes,
		budget:     s.budget,
		mmapEpoch:  s.mmapEpoch,
		mmapSeq:    s.mmapSeq,
	}
	for k, v := range s.mmaps {
		cp.mmaps[k] = v
	}
	return cp
}

// Snapshot captures the current contents of the Space. Taking a snapshot is
// O(pages) pointer work; page data is shared copy-on-write, so the memory
// cost of holding a snapshot is the number of pages subsequently dirtied —
// the quantity reported in Table 7 of the paper.
type Snapshot struct {
	owner      *Space
	pages      []*page
	captured   uint64 // non-nil page count at snapshot time
	pos        int    // owner journal position at snapshot time
	brk        Addr
	mmapCursor Addr
	mmaps      map[Addr]uint32
	mmapBytes  uint64
	mmapEpoch  uint64
}

// Snapshot records the current state for a later Restore.
func (s *Space) Snapshot() *Snapshot {
	pages := make([]*page, len(s.pages))
	copy(pages, s.pages)
	var captured uint64
	for _, p := range pages {
		if p != nil {
			p.refs.Add(1)
			captured++
		}
	}
	s.trc.Emit(trace.KSnapshot, captured, 0)
	mmaps := make(map[Addr]uint32, len(s.mmaps))
	for k, v := range s.mmaps {
		mmaps[k] = v
	}
	snap := &Snapshot{
		owner:      s,
		pages:      pages,
		captured:   captured,
		pos:        len(s.journal),
		brk:        s.brk,
		mmapCursor: s.mmapCursor,
		mmaps:      mmaps,
		mmapBytes:  s.mmapBytes,
		mmapEpoch:  s.mmapEpoch,
	}
	s.snaps = append(s.snaps, snap)
	// Every frame is shared with the snapshot now; the TLB's "exclusively
	// owned" premise no longer holds.
	s.tlbData = nil
	return snap
}

// Restore rewinds the Space to the snapshot's state. The snapshot remains
// valid and may be restored again (diagnosis rolls back to the same
// checkpoint many times).
//
// Cost is O(page-table slots changed since the snapshot was taken), not
// O(pages): the slot journal names exactly the slots that may differ, and
// the existing page table and mmap map are reused in place. The slots a
// Restore rewinds are themselves journaled so that other live snapshots
// stay restorable.
func (s *Space) Restore(snap *Snapshot) {
	s.tlbData = nil
	if snap.owner == s && len(s.journal)-snap.pos < len(s.pages) {
		// Replay the journal tail. Appends made by restoreSlot extend
		// the slice beyond the captured window, so the iteration stays
		// over the pre-restore entries.
		tail := s.journal[snap.pos:]
		for _, pn := range tail {
			s.restoreSlot(pn, snap)
		}
	} else {
		// Foreign snapshot or a journal tail longer than the table:
		// sweep every slot (never worse than the old full rebuild).
		if len(snap.pages) > len(s.pages) {
			grown := make([]*page, len(snap.pages))
			copy(grown, s.pages)
			s.pages = grown
		}
		for pn := range s.pages {
			s.restoreSlot(uint32(pn), snap)
		}
	}
	s.trc.Emit(trace.KRestore, snap.captured, 0)
	s.brk = snap.brk
	s.mmapCursor = snap.mmapCursor
	if s.mmapEpoch != snap.mmapEpoch {
		clear(s.mmaps)
		for k, v := range snap.mmaps {
			s.mmaps[k] = v
		}
		s.mmapBytes = snap.mmapBytes
		s.mmapEpoch = snap.mmapEpoch
	}
	if snap.owner == s {
		// The Space now matches the snapshot exactly, so its diff set is
		// empty: advancing pos keeps the replayed tail from growing
		// across the many restores of one checkpoint, and compaction can
		// then drop journal entries no live snapshot reaches.
		snap.pos = len(s.journal)
		s.compactJournal()
	}
}

// restoreSlot points slot pn back at the snapshot's page, adjusting
// refcounts and journaling the change for sibling snapshots.
func (s *Space) restoreSlot(pn uint32, snap *Snapshot) {
	var want *page
	if int(pn) < len(snap.pages) {
		want = snap.pages[pn]
	}
	cur := s.pages[pn]
	if cur == want {
		return
	}
	if want != nil {
		want.refs.Add(1)
	}
	s.pages[pn] = want
	s.noteSlotChange(pn)
	if cur != nil {
		s.decref(cur)
	}
}

// Release drops the snapshot's references so its pages can be collected,
// and prunes the owner's journal. The snapshot must not be used afterwards.
func (snap *Snapshot) Release() {
	s := snap.owner
	for _, p := range snap.pages {
		if p != nil {
			s.decref(p)
		}
	}
	snap.pages = nil
	for i, sn := range s.snaps {
		if sn == snap {
			s.snaps = append(s.snaps[:i], s.snaps[i+1:]...)
			break
		}
	}
	if len(s.snaps) == 0 {
		s.journal = s.journal[:0]
		return
	}
	s.compactJournal()
}

// compactJournal drops the journal prefix that no live snapshot can reach
// (entries before the oldest snapshot's position can never be replayed
// again). The copy is amortized by requiring the dead prefix to be both
// absolutely large and at least half the journal.
func (s *Space) compactJournal() {
	min := s.snaps[0].pos
	for _, sn := range s.snaps[1:] {
		if sn.pos < min {
			min = sn.pos
		}
	}
	if min > 1024 && min >= len(s.journal)/2 {
		s.journal = append(s.journal[:0], s.journal[min:]...)
		for _, sn := range s.snaps {
			sn.pos -= min
		}
	}
}

// Bytes returns the number of bytes of heap captured by the snapshot.
func (snap *Snapshot) Bytes() uint64 { return uint64(snap.brk - HeapBase) }

// UniqueBytes returns the number of bytes held by pages that are, at call
// time, referenced only through snapshots (refs recorded at snapshot time
// is not tracked per holder; this reports pages*PageSize as an upper bound
// for accounting displays).
func (snap *Snapshot) UniqueBytes() uint64 {
	return snap.captured * PageSize
}
