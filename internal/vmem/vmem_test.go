package vmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSbrkGrowsAndZeroFills(t *testing.T) {
	s := New(1 << 20)
	base, err := s.Sbrk(100)
	if err != nil {
		t.Fatalf("Sbrk: %v", err)
	}
	if base != HeapBase {
		t.Fatalf("first Sbrk returned %#x, want %#x", base, HeapBase)
	}
	got, err := s.Read(base, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d not zero: %#x", i, b)
		}
	}
	if s.Brk() != HeapBase+100 {
		t.Fatalf("brk = %#x, want %#x", s.Brk(), HeapBase+100)
	}
}

func TestSbrkZeroReturnsBrk(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Sbrk(10); err != nil {
		t.Fatal(err)
	}
	a, err := s.Sbrk(0)
	if err != nil || a != s.Brk() {
		t.Fatalf("Sbrk(0) = %#x, %v; want %#x, nil", a, err, s.Brk())
	}
}

func TestSbrkLimit(t *testing.T) {
	s := New(PageSize)
	if _, err := s.Sbrk(PageSize); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	if _, err := s.Sbrk(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("beyond limit: got %v, want ErrOutOfMemory", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(4 * PageSize)
	data := make([]byte, 2*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Straddle a page boundary deliberately.
	at := base + PageSize - 9
	if err := s.Write(at, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := s.Read(at, len(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(64)
	cases := []struct {
		name  string
		addr  Addr
		n     int
		write bool
	}{
		{"below heap base", HeapBase - 8, 4, false},
		{"nil pointer", 0, 4, false},
		{"beyond brk", base + 64, 1, true},
		{"straddles brk", base + 60, 8, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.write {
				err = s.Write(tc.addr, make([]byte, tc.n))
			} else {
				_, err = s.Read(tc.addr, tc.n)
			}
			if !errors.Is(err, ErrUnmapped) {
				t.Fatalf("got %v, want ErrUnmapped", err)
			}
			var ae *AccessError
			if !errors.As(err, &ae) {
				t.Fatalf("error is not *AccessError: %v", err)
			}
			if ae.Addr != tc.addr || ae.Write != tc.write {
				t.Fatalf("fault describes %#x write=%v, want %#x write=%v", ae.Addr, ae.Write, tc.addr, tc.write)
			}
		})
	}
}

func TestAccessErrorMessage(t *testing.T) {
	e := &AccessError{Addr: 0x1234, Len: 4, Write: true}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestU32RoundTrip(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	const v = 0xDEADBEEF
	if err := s.WriteU32(base+12, v); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadU32(base + 12)
	if err != nil || got != v {
		t.Fatalf("ReadU32 = %#x, %v; want %#x", got, err, v)
	}
	// Little-endian layout.
	b, _ := s.Read(base+12, 4)
	if b[0] != 0xEF || b[3] != 0xDE {
		t.Fatalf("not little-endian: % x", b)
	}
}

func TestFill(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(2 * PageSize)
	at := base + PageSize - 100
	if err := s.Fill(at, 0xAB, 300); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(at, 300)
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
	// Neighbours untouched.
	before, _ := s.Read(at-1, 1)
	after, _ := s.Read(at+300, 1)
	if before[0] != 0 || after[0] != 0 {
		t.Fatal("Fill bled outside its range")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(4 * PageSize)
	s.Write(base, []byte("original"))
	snap := s.Snapshot()
	defer snap.Release()

	s.Write(base, []byte("mutated!"))
	s.Sbrk(PageSize) // grow after snapshot

	s.Restore(snap)
	got, err := s.Read(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("after restore: %q", got)
	}
	if s.Brk() != base+4*PageSize {
		t.Fatalf("brk not restored: %#x", s.Brk())
	}
}

func TestSnapshotIsStableWhileSpaceMutates(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.Write(base, []byte{1, 2, 3})
	snap := s.Snapshot()
	defer snap.Release()
	s.Fill(base, 0xFF, PageSize)

	// Restoring must bring back the pre-mutation bytes even though the
	// live space overwrote the whole page.
	s.Restore(snap)
	got, _ := s.Read(base, 3)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot corrupted by post-snapshot writes: % x", got)
	}
}

func TestRestoreSameSnapshotTwice(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.WriteU32(base, 42)
	snap := s.Snapshot()
	defer snap.Release()

	for i := 0; i < 3; i++ {
		s.WriteU32(base, uint32(100+i))
		s.Restore(snap)
		v, _ := s.ReadU32(base)
		if v != 42 {
			t.Fatalf("iteration %d: restored value %d, want 42", i, v)
		}
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.WriteU32(base, 1)
	s1 := s.Snapshot()
	s.WriteU32(base, 2)
	s2 := s.Snapshot()
	s.WriteU32(base, 3)

	s.Restore(s2)
	if v, _ := s.ReadU32(base); v != 2 {
		t.Fatalf("restore s2: %d", v)
	}
	s.Restore(s1)
	if v, _ := s.ReadU32(base); v != 1 {
		t.Fatalf("restore s1: %d", v)
	}
	// s2 must still be intact after restoring s1.
	s.Restore(s2)
	if v, _ := s.ReadU32(base); v != 2 {
		t.Fatalf("re-restore s2: %d", v)
	}
	s1.Release()
	s2.Release()
}

func TestDirtyPageAccounting(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(8 * PageSize)
	s.TakeDirty()
	snap := s.Snapshot()
	defer snap.Release()

	// Touch three distinct pages; each first write after the snapshot
	// must copy exactly one page.
	for i := 0; i < 3; i++ {
		s.Write(base+Addr(i)*PageSize, []byte{1})
	}
	// Touching the same page again is free.
	s.Write(base, []byte{2})
	if d := s.TakeDirty(); d != 3 {
		t.Fatalf("dirty pages = %d, want 3", d)
	}
	if d := s.TakeDirty(); d != 0 {
		t.Fatalf("counter not reset: %d", d)
	}
}

func TestSnapshotBytes(t *testing.T) {
	s := New(1 << 20)
	s.Sbrk(5 * PageSize)
	snap := s.Snapshot()
	defer snap.Release()
	if snap.Bytes() != 5*PageSize {
		t.Fatalf("Bytes = %d", snap.Bytes())
	}
	if snap.UniqueBytes() != 5*PageSize {
		t.Fatalf("UniqueBytes = %d", snap.UniqueBytes())
	}
}

// Property: restoring a snapshot always reproduces the exact byte image
// present when the snapshot was taken, regardless of the interleaving of
// writes, fills, further Sbrks and other snapshots.
func TestQuickSnapshotFidelity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1 << 22)
		size := uint32(1+rng.Intn(16)) * PageSize
		base, _ := s.Sbrk(size)
		// Random initial contents.
		init := make([]byte, size)
		rng.Read(init)
		s.Write(base, init)

		want := make([]byte, size)
		s.ReadInto(base, want)
		snap := s.Snapshot()
		defer snap.Release()

		// Random mutations.
		for i := 0; i < 50; i++ {
			switch rng.Intn(3) {
			case 0:
				n := rng.Intn(512) + 1
				at := base + uint32(rng.Intn(int(size)-n))
				buf := make([]byte, n)
				rng.Read(buf)
				s.Write(at, buf)
			case 1:
				n := rng.Intn(2048) + 1
				at := base + uint32(rng.Intn(int(size)-n))
				s.Fill(at, byte(rng.Intn(256)), n)
			case 2:
				inner := s.Snapshot()
				s.Fill(base, byte(i), 64)
				s.Restore(inner)
				inner.Release()
			}
		}
		s.Restore(snap)
		got := make([]byte, size)
		s.ReadInto(base, got)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite64(b *testing.B) {
	s := New(1 << 24)
	base, _ := s.Sbrk(1 << 20)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(base+Addr(i*64)%(1<<19), buf)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := New(1 << 24)
	base, _ := s.Sbrk(256 * PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		s.Write(base, []byte{byte(i)})
		s.Restore(snap)
		snap.Release()
	}
}

// TestFastSlowPathEquivalence drives an identical randomized op soup
// through a fast-path Space and a SetFastPaths(false) reference Space and
// demands bit-identical results: values, faults, dirty counts, snapshots.
func TestFastSlowPathEquivalence(t *testing.T) {
	type spacePair struct{ fast, slow *Space }
	p := spacePair{fast: New(1 << 22), slow: New(1 << 22)}
	p.slow.SetFastPaths(false)
	both := func(f func(s *Space) (uint64, error)) {
		t.Helper()
		vf, ef := f(p.fast)
		vs, es := f(p.slow)
		if vf != vs || (ef == nil) != (es == nil) {
			t.Fatalf("fast/slow divergence: (%#x, %v) vs (%#x, %v)", vf, ef, vs, es)
		}
	}
	both(func(s *Space) (uint64, error) { a, err := s.Sbrk(24 * PageSize); return uint64(a), err })

	rng := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	var snapsFast, snapsSlow []*Snapshot
	for i := 0; i < 4000; i++ {
		r := next()
		// Half the addresses are aligned in-bounds words, the rest
		// stress unaligned, beyond-brk and guard-region cases.
		a := Addr(uint32(HeapBase) + uint32(r>>32)%(26*PageSize))
		if r&1 == 0 {
			a &^= 3
		}
		switch r % 7 {
		case 0, 1, 2:
			v := uint32(r >> 13)
			both(func(s *Space) (uint64, error) { return 0, s.WriteU32(a, v) })
		case 3, 4:
			both(func(s *Space) (uint64, error) { v, err := s.ReadU32(a); return uint64(v), err })
		case 5:
			if len(snapsFast) < 4 && r&2 == 0 {
				snapsFast = append(snapsFast, p.fast.Snapshot())
				snapsSlow = append(snapsSlow, p.slow.Snapshot())
			} else if len(snapsFast) > 0 {
				k := int(r>>8) % len(snapsFast)
				p.fast.Restore(snapsFast[k])
				p.slow.Restore(snapsSlow[k])
			}
		case 6:
			both(func(s *Space) (uint64, error) { return 0, s.Fill(a, byte(r>>7), int(r%300)) })
		}
		both(func(s *Space) (uint64, error) { return s.DirtyPages(), nil })
	}
	// Final heap contents must match byte for byte.
	n := int(p.fast.Brk() - HeapBase)
	bf, err := p.fast.Read(HeapBase, n)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := p.slow.Read(HeapBase, n)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bf, bs) {
		t.Fatal("fast and slow heap images differ")
	}
}

// TestRestoreAcrossMapUnmap exercises the O(dirty) restore path when the
// mmap table changed after the snapshot (the epoch mismatch branch).
func TestRestoreAcrossMapUnmap(t *testing.T) {
	s := New(64 << 20)
	base, _ := s.Sbrk(2 * PageSize)
	keep, err := s.Map(3 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	s.Fill(keep, 0x11, 3*PageSize)
	s.WriteU32(base, 0xAAAA)
	snap := s.Snapshot()
	defer snap.Release()

	// Mutate everything: unmap the old region, map two new ones, dirty
	// the heap.
	if err := s.Unmap(keep); err != nil {
		t.Fatal(err)
	}
	m1, _ := s.Map(PageSize)
	m2, _ := s.Map(5 * PageSize)
	s.Fill(m2, 0x22, 5*PageSize)
	s.WriteU32(base, 0xBBBB)

	s.Restore(snap)
	if v, _ := s.ReadU32(base); v != 0xAAAA {
		t.Fatalf("heap word = %#x, want 0xAAAA", v)
	}
	if v, err := s.ReadU32(keep); err != nil || v != 0x11111111 {
		t.Fatalf("restored mmap region: %#x, %v", v, err)
	}
	if _, err := s.ReadU32(m2); err == nil {
		t.Fatal("post-snapshot mapping survived restore")
	}
	if n, ok := s.MappedRegion(keep); !ok || n != 3*PageSize {
		t.Fatalf("mmap table not restored: (%d, %v)", n, ok)
	}
	if _, ok := s.MappedRegion(m1); ok {
		t.Fatal("mmap table kept post-snapshot region")
	}
	// And the cursor must be rewound so future Maps reuse addresses
	// deterministically.
	m3, _ := s.Map(PageSize)
	if m3 != m1 {
		t.Fatalf("mmap cursor not rewound: %#x vs %#x", m3, m1)
	}
}

// TestFreelistPagesAreZeroed pins the zero-fill guarantee when Sbrk and
// Map recycle frames from the page freelist.
func TestFreelistPagesAreZeroed(t *testing.T) {
	s := New(64 << 20)
	base, _ := s.Sbrk(8 * PageSize)
	s.Fill(base, 0xFF, 8*PageSize)
	snap := s.Snapshot()
	// Dirty every page (COW copies), then restore: the copies' frames
	// land on the freelist full of 0xFF.
	s.Fill(base, 0xFF, 8*PageSize)
	s.Restore(snap)
	snap.Release()

	a, err := s.Sbrk(4 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := s.Read(a, 4*PageSize)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("recycled Sbrk page byte %d = %#x, want 0", i, b)
		}
	}
	m, err := s.Map(2 * PageSize)
	if err != nil {
		t.Fatal(err)
	}
	buf, _ = s.Read(m, 2*PageSize)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("recycled Map page byte %d = %#x, want 0", i, b)
		}
	}
}

// TestJournalStaysBounded pins the compaction behaviour: the rollback loop
// of a diagnosis session (dirty a few pages, restore, repeat — with the
// checkpoint held live throughout) must not grow the slot journal without
// bound, or restores would silently degrade to full-table sweeps.
func TestJournalStaysBounded(t *testing.T) {
	s := New(64 << 20)
	base, _ := s.Sbrk(1 << 20)
	snap := s.Snapshot()
	defer snap.Release()
	for i := 0; i < 5000; i++ {
		for pg := 0; pg < 8; pg++ {
			s.WriteU32(base+Addr(pg*PageSize), uint32(i))
		}
		s.Restore(snap)
	}
	if len(s.journal) > 4096 {
		t.Fatalf("journal grew to %d entries over a repeated-restore loop", len(s.journal))
	}
}

// TestSnapshotChainWithCompaction interleaves a ring of snapshots (as the
// checkpoint manager keeps) with restores and releases, checking every
// surviving snapshot still restores exact contents afterwards.
func TestSnapshotChainWithCompaction(t *testing.T) {
	s := New(64 << 20)
	base, _ := s.Sbrk(32 * PageSize)
	type held struct {
		snap *Snapshot
		word uint32
	}
	var ring []held
	for i := 0; i < 40; i++ {
		w := uint32(0xC0DE0000 + i)
		s.WriteU32(base+Addr(i%32)*PageSize, w)
		ring = append(ring, held{s.Snapshot(), w})
		if len(ring) > 5 {
			ring[0].snap.Release()
			ring = ring[1:]
		}
		if i%7 == 3 {
			s.Restore(ring[i%len(ring)].snap)
		}
	}
	// Restore each surviving snapshot oldest-first and verify its word.
	for k := len(ring) - 1; k >= 0; k-- {
		s.Restore(ring[k].snap)
		idx := ring[k].word - 0xC0DE0000
		if v, _ := s.ReadU32(base + Addr(idx%32)*PageSize); v != ring[k].word {
			t.Fatalf("snapshot %d: word %#x, want %#x", k, v, ring[k].word)
		}
		ring[k].snap.Release()
	}
}
