package vmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSbrkGrowsAndZeroFills(t *testing.T) {
	s := New(1 << 20)
	base, err := s.Sbrk(100)
	if err != nil {
		t.Fatalf("Sbrk: %v", err)
	}
	if base != HeapBase {
		t.Fatalf("first Sbrk returned %#x, want %#x", base, HeapBase)
	}
	got, err := s.Read(base, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d not zero: %#x", i, b)
		}
	}
	if s.Brk() != HeapBase+100 {
		t.Fatalf("brk = %#x, want %#x", s.Brk(), HeapBase+100)
	}
}

func TestSbrkZeroReturnsBrk(t *testing.T) {
	s := New(1 << 20)
	if _, err := s.Sbrk(10); err != nil {
		t.Fatal(err)
	}
	a, err := s.Sbrk(0)
	if err != nil || a != s.Brk() {
		t.Fatalf("Sbrk(0) = %#x, %v; want %#x, nil", a, err, s.Brk())
	}
}

func TestSbrkLimit(t *testing.T) {
	s := New(PageSize)
	if _, err := s.Sbrk(PageSize); err != nil {
		t.Fatalf("within limit: %v", err)
	}
	if _, err := s.Sbrk(1); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("beyond limit: got %v, want ErrOutOfMemory", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(4 * PageSize)
	data := make([]byte, 2*PageSize+17)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Straddle a page boundary deliberately.
	at := base + PageSize - 9
	if err := s.Write(at, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := s.Read(at, len(data))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(64)
	cases := []struct {
		name  string
		addr  Addr
		n     int
		write bool
	}{
		{"below heap base", HeapBase - 8, 4, false},
		{"nil pointer", 0, 4, false},
		{"beyond brk", base + 64, 1, true},
		{"straddles brk", base + 60, 8, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var err error
			if tc.write {
				err = s.Write(tc.addr, make([]byte, tc.n))
			} else {
				_, err = s.Read(tc.addr, tc.n)
			}
			if !errors.Is(err, ErrUnmapped) {
				t.Fatalf("got %v, want ErrUnmapped", err)
			}
			var ae *AccessError
			if !errors.As(err, &ae) {
				t.Fatalf("error is not *AccessError: %v", err)
			}
			if ae.Addr != tc.addr || ae.Write != tc.write {
				t.Fatalf("fault describes %#x write=%v, want %#x write=%v", ae.Addr, ae.Write, tc.addr, tc.write)
			}
		})
	}
}

func TestAccessErrorMessage(t *testing.T) {
	e := &AccessError{Addr: 0x1234, Len: 4, Write: true}
	if e.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestU32RoundTrip(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	const v = 0xDEADBEEF
	if err := s.WriteU32(base+12, v); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadU32(base + 12)
	if err != nil || got != v {
		t.Fatalf("ReadU32 = %#x, %v; want %#x", got, err, v)
	}
	// Little-endian layout.
	b, _ := s.Read(base+12, 4)
	if b[0] != 0xEF || b[3] != 0xDE {
		t.Fatalf("not little-endian: % x", b)
	}
}

func TestFill(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(2 * PageSize)
	at := base + PageSize - 100
	if err := s.Fill(at, 0xAB, 300); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read(at, 300)
	for i, b := range got {
		if b != 0xAB {
			t.Fatalf("byte %d = %#x, want 0xAB", i, b)
		}
	}
	// Neighbours untouched.
	before, _ := s.Read(at-1, 1)
	after, _ := s.Read(at+300, 1)
	if before[0] != 0 || after[0] != 0 {
		t.Fatal("Fill bled outside its range")
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(4 * PageSize)
	s.Write(base, []byte("original"))
	snap := s.Snapshot()
	defer snap.Release()

	s.Write(base, []byte("mutated!"))
	s.Sbrk(PageSize) // grow after snapshot

	s.Restore(snap)
	got, err := s.Read(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "original" {
		t.Fatalf("after restore: %q", got)
	}
	if s.Brk() != base+4*PageSize {
		t.Fatalf("brk not restored: %#x", s.Brk())
	}
}

func TestSnapshotIsStableWhileSpaceMutates(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.Write(base, []byte{1, 2, 3})
	snap := s.Snapshot()
	defer snap.Release()
	s.Fill(base, 0xFF, PageSize)

	// Restoring must bring back the pre-mutation bytes even though the
	// live space overwrote the whole page.
	s.Restore(snap)
	got, _ := s.Read(base, 3)
	if !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("snapshot corrupted by post-snapshot writes: % x", got)
	}
}

func TestRestoreSameSnapshotTwice(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.WriteU32(base, 42)
	snap := s.Snapshot()
	defer snap.Release()

	for i := 0; i < 3; i++ {
		s.WriteU32(base, uint32(100+i))
		s.Restore(snap)
		v, _ := s.ReadU32(base)
		if v != 42 {
			t.Fatalf("iteration %d: restored value %d, want 42", i, v)
		}
	}
}

func TestNestedSnapshots(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(PageSize)
	s.WriteU32(base, 1)
	s1 := s.Snapshot()
	s.WriteU32(base, 2)
	s2 := s.Snapshot()
	s.WriteU32(base, 3)

	s.Restore(s2)
	if v, _ := s.ReadU32(base); v != 2 {
		t.Fatalf("restore s2: %d", v)
	}
	s.Restore(s1)
	if v, _ := s.ReadU32(base); v != 1 {
		t.Fatalf("restore s1: %d", v)
	}
	// s2 must still be intact after restoring s1.
	s.Restore(s2)
	if v, _ := s.ReadU32(base); v != 2 {
		t.Fatalf("re-restore s2: %d", v)
	}
	s1.Release()
	s2.Release()
}

func TestDirtyPageAccounting(t *testing.T) {
	s := New(1 << 20)
	base, _ := s.Sbrk(8 * PageSize)
	s.TakeDirty()
	snap := s.Snapshot()
	defer snap.Release()

	// Touch three distinct pages; each first write after the snapshot
	// must copy exactly one page.
	for i := 0; i < 3; i++ {
		s.Write(base+Addr(i)*PageSize, []byte{1})
	}
	// Touching the same page again is free.
	s.Write(base, []byte{2})
	if d := s.TakeDirty(); d != 3 {
		t.Fatalf("dirty pages = %d, want 3", d)
	}
	if d := s.TakeDirty(); d != 0 {
		t.Fatalf("counter not reset: %d", d)
	}
}

func TestSnapshotBytes(t *testing.T) {
	s := New(1 << 20)
	s.Sbrk(5 * PageSize)
	snap := s.Snapshot()
	defer snap.Release()
	if snap.Bytes() != 5*PageSize {
		t.Fatalf("Bytes = %d", snap.Bytes())
	}
	if snap.UniqueBytes() != 5*PageSize {
		t.Fatalf("UniqueBytes = %d", snap.UniqueBytes())
	}
}

// Property: restoring a snapshot always reproduces the exact byte image
// present when the snapshot was taken, regardless of the interleaving of
// writes, fills, further Sbrks and other snapshots.
func TestQuickSnapshotFidelity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(1 << 22)
		size := uint32(1+rng.Intn(16)) * PageSize
		base, _ := s.Sbrk(size)
		// Random initial contents.
		init := make([]byte, size)
		rng.Read(init)
		s.Write(base, init)

		want := make([]byte, size)
		s.ReadInto(base, want)
		snap := s.Snapshot()
		defer snap.Release()

		// Random mutations.
		for i := 0; i < 50; i++ {
			switch rng.Intn(3) {
			case 0:
				n := rng.Intn(512) + 1
				at := base + uint32(rng.Intn(int(size)-n))
				buf := make([]byte, n)
				rng.Read(buf)
				s.Write(at, buf)
			case 1:
				n := rng.Intn(2048) + 1
				at := base + uint32(rng.Intn(int(size)-n))
				s.Fill(at, byte(rng.Intn(256)), n)
			case 2:
				inner := s.Snapshot()
				s.Fill(base, byte(i), 64)
				s.Restore(inner)
				inner.Release()
			}
		}
		s.Restore(snap)
		got := make([]byte, size)
		s.ReadInto(base, got)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWrite64(b *testing.B) {
	s := New(1 << 24)
	base, _ := s.Sbrk(1 << 20)
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Write(base+Addr(i*64)%(1<<19), buf)
	}
}

func BenchmarkSnapshotRestore(b *testing.B) {
	s := New(1 << 24)
	base, _ := s.Sbrk(256 * PageSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := s.Snapshot()
		s.Write(base, []byte{byte(i)})
		s.Restore(snap)
		snap.Release()
	}
}
