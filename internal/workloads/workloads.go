// Package workloads provides the synthetic benchmark kernels standing in
// for SPEC INT2000 and the four allocation-intensive benchmarks (cfrac,
// espresso, lindsay, p2c) used in the paper's overhead evaluation
// (Figure 6, Tables 6 and 7).
//
// Each kernel reproduces the published *profile* of its namesake along the
// three axes the experiments measure:
//
//   - working set / COW dirty rate (Table 7's MB-per-checkpoint column),
//   - live-object count and size distribution (Table 6's allocator-
//     extension space overhead: 16 bytes of metadata per object), and
//   - allocation intensity relative to compute (Figure 6's allocator bar).
//
// Memory footprints are scaled to 1/8 of the paper's (a 2 GB testbed does
// not fit a laptop-friendly simulation 22×3 times over); the COW cost
// constant in package checkpoint is scaled inversely, so overhead
// *fractions* remain comparable while absolute MB columns are 1/8 of the
// paper's. The SPEC kernels keep full-scale object populations where those
// dominate (twolf, perlbmk); the allocation-intensive kernels are small
// enough to run at full scale.
package workloads

import (
	"fmt"

	"firstaid/internal/mmbug"
	"firstaid/internal/proc"
	"firstaid/internal/replay"
	"firstaid/internal/vmem"
)

// Class labels for reporting.
const (
	ClassSpec  = "SPEC INT2000"
	ClassAlloc = "allocation intensive"
)

// Profile parameterises one kernel.
type Profile struct {
	Name  string
	Class string

	// WSKB is the rooted working-set block size in KiB.
	WSKB int
	// DirtyKBPerStep is how many KiB of the working set each step
	// rewrites (rotating cursor → distinct pages within an interval).
	DirtyKBPerStep int
	// Live is the steady-state live-object population (churn ring size).
	Live int
	// ObjMin/ObjMax bound object sizes (bytes).
	ObjMin, ObjMax uint32
	// AllocsPerStep is the number of alloc/free pairs per step.
	AllocsPerStep int
	// ComputeCycles is the per-step compute cost.
	ComputeCycles uint64
}

// Kernel is a runnable synthetic benchmark; it implements app.App with no
// embedded bugs.
type Kernel struct {
	P Profile
}

// Root registers.
const (
	rootWS     = 0 // working-set block address
	rootRing   = 1 // churn ring table address
	rootCursor = 2 // ring cursor
	rootTouch  = 3 // working-set touch cursor (bytes)
)

// Name implements app.Program.
func (k *Kernel) Name() string { return k.P.Name }

// Bugs implements app.Program: kernels are bug-free.
func (k *Kernel) Bugs() []mmbug.Type { return nil }

// Init implements app.Program: allocates the working set and pre-fills the
// churn ring to the steady-state population.
func (k *Kernel) Init(p *proc.Proc) {
	defer p.Enter("main")()
	defer p.Enter(k.P.Name + "_init")()
	ws := func() vmem.Addr {
		defer p.Enter("ws_alloc")()
		return p.Malloc(uint32(k.P.WSKB) * 1024)
	}()
	ring := func() vmem.Addr {
		defer p.Enter("ring_alloc")()
		return p.Malloc(uint32(4 * max(1, k.P.Live)))
	}()
	p.Memset(ring, 0, 4*max(1, k.P.Live))
	p.SetRoot(rootWS, ws)
	p.SetRoot(rootRing, ring)
	p.SetRoot(rootCursor, 0)
	p.SetRoot(rootTouch, 0)
	for i := 0; i < k.P.Live; i++ {
		k.churn(p, i)
	}
}

// objSize derives a deterministic size in [ObjMin, ObjMax] from the step.
func (k *Kernel) objSize(i int) uint32 {
	if k.P.ObjMax <= k.P.ObjMin {
		return k.P.ObjMin
	}
	span := k.P.ObjMax - k.P.ObjMin + 1
	return k.P.ObjMin + uint32(i*2654435761)%span
}

// churn replaces one ring slot: free the displaced object, allocate a new
// one.
func (k *Kernel) churn(p *proc.Proc, i int) {
	defer p.Enter("work_alloc")()
	if k.P.Live == 0 {
		return
	}
	ring := p.RootAddr(rootRing)
	slot := p.Root(rootCursor) % uint32(k.P.Live)
	old := p.LoadU32(ring + vmem.Addr(4*slot))
	if old != 0 {
		func() {
			defer p.Enter("work_free")()
			p.Free(old)
		}()
	}
	n := k.objSize(i)
	obj := p.Malloc(n)
	// Initialise the header word; bulk init is modelled by compute.
	p.StoreU32(obj, uint32(i))
	p.StoreU32(ring+vmem.Addr(4*slot), obj)
	p.SetRoot(rootCursor, p.Root(rootCursor)+1)
}

// Handle implements app.Program: one benchmark step.
func (k *Kernel) Handle(p *proc.Proc, ev replay.Event) {
	defer p.Enter(k.P.Name + "_step")()
	p.Tick(k.P.ComputeCycles)

	// Dirty the working set: one word per page across the step's quota,
	// rotating so an interval touches distinct pages.
	if k.P.DirtyKBPerStep > 0 && k.P.WSKB > 0 {
		ws := p.RootAddr(rootWS)
		size := uint32(k.P.WSKB) * 1024
		cursor := p.Root(rootTouch)
		pages := (k.P.DirtyKBPerStep*1024 + vmem.PageSize - 1) / vmem.PageSize
		for j := 0; j < pages; j++ {
			off := cursor % size
			p.StoreU32(ws+vmem.Addr(off), uint32(ev.N+j))
			cursor += vmem.PageSize
		}
		p.SetRoot(rootTouch, cursor%size)
	}

	for a := 0; a < k.P.AllocsPerStep; a++ {
		k.churn(p, ev.N*k.P.AllocsPerStep+a)
	}
}

// Workload implements app.Workloader: n steps, no triggers (kernels have no
// bugs).
func (k *Kernel) Workload(n int, _ []int) *replay.Log {
	log := replay.NewLog()
	for i := 0; i < n; i++ {
		log.Append("step", "", i)
	}
	return log
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Profiles is the kernel catalogue: 11 SPEC INT2000 programs and 4
// allocation-intensive benchmarks, in the paper's Figure-6 order.
var Profiles = []Profile{
	// SPEC INT2000 (memory figures ≈ paper's / 8).
	{Name: "164.gzip", Class: ClassSpec, WSKB: 23040, DirtyKBPerStep: 29, Live: 24, ObjMin: 16384, ObjMax: 32768, AllocsPerStep: 1, ComputeCycles: 90_000},
	{Name: "175.vpr", Class: ClassSpec, WSKB: 1024, DirtyKBPerStep: 9, Live: 4000, ObjMin: 64, ObjMax: 600, AllocsPerStep: 4, ComputeCycles: 85_000},
	{Name: "176.gcc", Class: ClassSpec, WSKB: 10700, DirtyKBPerStep: 29, Live: 500, ObjMin: 64, ObjMax: 340, AllocsPerStep: 10, ComputeCycles: 80_000},
	{Name: "181.mcf", Class: ClassSpec, WSKB: 12140, DirtyKBPerStep: 62, Live: 20, ObjMin: 1024, ObjMax: 4096, AllocsPerStep: 1, ComputeCycles: 75_000},
	{Name: "186.crafty", Class: ClassSpec, WSKB: 256, DirtyKBPerStep: 6, Live: 48, ObjMin: 128, ObjMax: 512, AllocsPerStep: 1, ComputeCycles: 95_000},
	{Name: "197.parser", Class: ClassSpec, WSKB: 3840, DirtyKBPerStep: 70, Live: 1500, ObjMin: 32, ObjMax: 128, AllocsPerStep: 14, ComputeCycles: 80_000},
	{Name: "252.eon", Class: ClassSpec, WSKB: 40, DirtyKBPerStep: 1, Live: 50, ObjMin: 400, ObjMax: 800, AllocsPerStep: 2, ComputeCycles: 95_000},
	{Name: "253.perlbmk", Class: ClassSpec, WSKB: 1024, DirtyKBPerStep: 29, Live: 40000, ObjMin: 64, ObjMax: 240, AllocsPerStep: 18, ComputeCycles: 70_000},
	{Name: "255.vortex", Class: ClassSpec, WSKB: 13900, DirtyKBPerStep: 214, Live: 5500, ObjMin: 128, ObjMax: 384, AllocsPerStep: 6, ComputeCycles: 80_000},
	{Name: "256.bzip2", Class: ClassSpec, WSKB: 23670, DirtyKBPerStep: 103, Live: 12, ObjMin: 32768, ObjMax: 65536, AllocsPerStep: 1, ComputeCycles: 85_000},
	{Name: "300.twolf", Class: ClassSpec, WSKB: 64, DirtyKBPerStep: 10, Live: 14000, ObjMin: 8, ObjMax: 40, AllocsPerStep: 8, ComputeCycles: 85_000},
	// Allocation-intensive [Berger 2000] (full scale: they are small).
	{Name: "cfrac", Class: ClassAlloc, WSKB: 16, DirtyKBPerStep: 8, Live: 11000, ObjMin: 8, ObjMax: 24, AllocsPerStep: 60, ComputeCycles: 38_000},
	{Name: "espresso", Class: ClassAlloc, WSKB: 80, DirtyKBPerStep: 8, Live: 5000, ObjMin: 16, ObjMax: 60, AllocsPerStep: 30, ComputeCycles: 45_000},
	{Name: "lindsay", Class: ClassAlloc, WSKB: 1780, DirtyKBPerStep: 13, Live: 250, ObjMin: 64, ObjMax: 180, AllocsPerStep: 6, ComputeCycles: 70_000},
	{Name: "p2c", Class: ClassAlloc, WSKB: 100, DirtyKBPerStep: 3, Live: 15000, ObjMin: 8, ObjMax: 40, AllocsPerStep: 40, ComputeCycles: 35_000},
}

// New returns the kernel with the given name.
func New(name string) (*Kernel, error) {
	for _, p := range Profiles {
		if p.Name == name {
			return &Kernel{P: p}, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown kernel %q", name)
}

// Names lists every kernel in catalogue order.
func Names() []string {
	out := make([]string, len(Profiles))
	for i, p := range Profiles {
		out[i] = p.Name
	}
	return out
}
