package workloads

import (
	"testing"

	"firstaid/internal/allocext"
	"firstaid/internal/callsite"
	"firstaid/internal/heap"
	"firstaid/internal/proc"
	"firstaid/internal/vmem"
)

func runKernel(t testing.TB, k *Kernel, steps int, withExt bool) (cycles uint64, heapPeak uint64) {
	t.Helper()
	mem := vmem.New(512 << 20)
	h := heap.New(mem)
	var p *proc.Proc
	if withExt {
		sites := callsite.NewTable()
		ext := allocext.New(h, sites)
		p = proc.New(mem, ext)
		p.Sites = sites
	} else {
		p = proc.New(mem, proc.RawMM{H: h})
	}
	if f := proc.Catch(func() { k.Init(p) }); f != nil {
		t.Fatalf("%s init: %v", k.P.Name, f)
	}
	log := k.Workload(steps, nil)
	for {
		ev, ok := log.Next()
		if !ok {
			break
		}
		if f := proc.Catch(func() { k.Handle(p, ev) }); f != nil {
			t.Fatalf("%s step %d: %v", k.P.Name, ev.N, f)
		}
	}
	return p.Clock(), h.PeakBytes()
}

func TestAllKernelsRunClean(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			k, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			cycles, peak := runKernel(t, k, 60, false)
			if cycles == 0 || peak == 0 {
				t.Fatalf("degenerate run: cycles=%d peak=%d", cycles, peak)
			}
		})
	}
}

func TestUnknownKernel(t *testing.T) {
	if _, err := New("999.nonesuch"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestExtensionSpaceOverheadShape(t *testing.T) {
	// Table 6's shape: per-object metadata hits small-object programs
	// hardest. cfrac must show tens of percent; mcf must be ~0.
	k, _ := New("cfrac")
	_, rawPeak := runKernel(t, k, 60, false)
	k2, _ := New("cfrac")
	_, extPeak := runKernel(t, k2, 60, true)
	cfracOverhead := float64(extPeak-rawPeak) / float64(rawPeak)
	if cfracOverhead < 0.30 {
		t.Errorf("cfrac ext space overhead = %.1f%%, want large (paper: 93%%)", 100*cfracOverhead)
	}

	m, _ := New("181.mcf")
	_, rawM := runKernel(t, m, 60, false)
	m2, _ := New("181.mcf")
	_, extM := runKernel(t, m2, 60, true)
	mcfOverhead := float64(extM-rawM) / float64(rawM)
	if mcfOverhead > 0.01 {
		t.Errorf("mcf ext space overhead = %.2f%%, want ~0 (paper: 0%%)", 100*mcfOverhead)
	}
	t.Logf("cfrac %.1f%%, mcf %.3f%%", 100*cfracOverhead, 100*mcfOverhead)
}

func TestExtensionTimeOverheadShape(t *testing.T) {
	// Figure 6's allocator bar: allocation-intensive kernels pay more
	// than compute-heavy ones.
	rel := func(name string) float64 {
		k1, _ := New(name)
		base, _ := runKernel(t, k1, 80, false)
		k2, _ := New(name)
		ext, _ := runKernel(t, k2, 80, true)
		return float64(ext)/float64(base) - 1
	}
	cfrac := rel("cfrac")
	gzip := rel("164.gzip")
	if cfrac <= gzip {
		t.Errorf("cfrac allocator overhead (%.2f%%) should exceed gzip's (%.2f%%)", 100*cfrac, 100*gzip)
	}
	if cfrac > 0.25 {
		t.Errorf("cfrac allocator overhead = %.1f%%, implausibly high", 100*cfrac)
	}
	t.Logf("cfrac %.2f%%, gzip %.2f%%", 100*cfrac, 100*gzip)
}

func TestDeterministicAcrossRuns(t *testing.T) {
	k1, _ := New("175.vpr")
	c1, p1 := runKernel(t, k1, 50, true)
	k2, _ := New("175.vpr")
	c2, p2 := runKernel(t, k2, 50, true)
	if c1 != c2 || p1 != p2 {
		t.Fatalf("kernel not deterministic: (%d,%d) vs (%d,%d)", c1, p1, c2, p2)
	}
}
